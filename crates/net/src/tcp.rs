//! TCP cluster: nodes connected by loop-back TCP sockets, all I/O driven
//! by one event loop per process.
//!
//! Every node runs the same loop as the thread cluster, but links are real
//! sockets and messages travel through the wire codec — the closest
//! in-process analogue of the paper's cluster deployment.
//!
//! # The I/O architecture: one nonblocking loop per process
//!
//! A node thread never touches a socket. Each process owns a single
//! [`crate::event_loop`] thread that drives all of its `2·(n−1)` streams
//! through a `poll(2)`-based readiness loop ([`crate::poll`]):
//!
//! * **Outbound**: `Send` actions enqueue into the peer's two-lane
//!   [`crate::queue::PeerQueue`] and wake the loop (one coalesced wake per
//!   action batch). The loop drains each queue — ordering frames ahead of
//!   bulk — encodes the batch into pooled scratch and pushes it with a
//!   single vectored write; partial writes park the remainder and re-arm
//!   writability. Under load this coalesces many frames per syscall and
//!   keeps consensus traffic from queueing behind payload floods inside
//!   the transport, mirroring the simulator's priority lane.
//! * **Inbound**: sockets read straight into pooled receive buffers and
//!   frames decode **in place** from those bytes
//!   ([`iabc_types::Decode::decode_in_place`]), going to the node's input
//!   channel with no re-assembly copy and no relay thread.
//!
//! The previous architecture — a blocking reader thread per connection
//! plus a flusher thread per peer, `2·(n−1)` I/O threads per process —
//! survives as [`crate::tcp_threaded::ThreadedTcpCluster`], the
//! measured control for the `loopback_cluster` bench.
//!
//! # Lock discipline
//!
//! All transport locking lives in [`crate::queue`] (one mutex per peer
//! queue, no I/O under a guard — see its module docs) and
//! [`crate::pool`]. The event loop itself never blocks: lint rule `E1`
//! mechanically enforces that its module set reaches the kernel only
//! through the sanctioned nonblocking shims in [`crate::poll`].

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use iabc_runtime::Node;
use iabc_types::{Decode, Encode, ProcessId};

use crate::adapter::{MsgOverTcp, OutboundMesh};
use crate::cluster::ThreadCluster;
use crate::event_loop::{self, EventLoopHandle, LoopTopology, OutboundLink, Waker};
use crate::netfault::{NetFaultPlan, NetFaultReport, NetFaultStats};
use crate::poll::wake_channel;
use crate::queue::PeerQueue;

/// Per-process outbound links (connected stream + feeding queue + the
/// peer's reconnect address), handed to that process's event loop.
type WriterConns<M> = Vec<Vec<OutboundLink<M>>>;
use crate::NetOutput;

/// A mesh of loop-back TCP connections between `n` local "processes",
/// with one event-driven I/O thread per process.
///
/// Internally each process still runs its node on a thread (this is a
/// test/demo vehicle, not a deployment platform), but every message
/// crosses a real socket through the wire codec, so the full
/// encode → TCP → decode-in-place path is exercised.
pub struct TcpCluster<N: Node>
where
    N::Msg: Encode,
{
    inner: ThreadCluster<MsgOverTcp<N>>,
    outbound: OutboundMesh<N::Msg>,
    io_loops: Vec<EventLoopHandle>,
    fault_stats: Vec<Arc<NetFaultStats>>,
}

impl<N> TcpCluster<N>
where
    N: Node + Send + 'static,
    N::Msg: Encode + Decode + Send,
    N::Command: Send,
    N::Output: Send,
{
    /// Binds `n` loop-back listeners, connects the full mesh (blocking
    /// handshakes, so the cluster is fully wired before this returns),
    /// and starts the node threads and per-process event loops.
    ///
    /// # Panics
    ///
    /// Panics if sockets cannot be bound or connected (loop-back only, so
    /// this indicates local resource exhaustion).
    pub fn start(n: usize, factory: impl FnMut(ProcessId) -> N) -> Self {
        Self::start_with_faults(n, None, factory)
    }

    /// [`TcpCluster::start`] with an optional nemesis fault plan. Every
    /// process's event loop gets a clone of the plan, so both endpoints
    /// of a partitioned pair sever their half of the link. `None` keeps
    /// the frame path entirely fault-layer-free (the plan is never
    /// consulted), so fault-off wire traffic is byte-identical to a
    /// cluster started through [`TcpCluster::start`].
    ///
    /// # Panics
    ///
    /// Panics as [`TcpCluster::start`] does.
    pub fn start_with_faults(
        n: usize,
        faults: Option<NetFaultPlan>,
        mut factory: impl FnMut(ProcessId) -> N,
    ) -> Self {
        assert!(n > 0, "need at least one process");
        // Process ids travel as u16 in the handshake and frame tags; every
        // `i as u16` below is bounded by this assert.
        assert!(n <= usize::from(u16::MAX) + 1, "process ids are u16 on the wire");
        // Bind one listener per process on an ephemeral port.
        // Setup-time expects below are documented under `# Panics`: they run
        // before any remote bytes exist, on loop-back sockets only, where a
        // failure means local resource exhaustion and there is no
        // connection to poison yet.
        let listeners: Vec<TcpListener> = (0..n)
            // lint:allow(P1): bootstrap bind, documented panic, no remote input yet
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loop-back listener"))
            .collect();
        let addrs: Vec<_> =
            // lint:allow(P1): bootstrap, documented panic, no remote input yet
            listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();

        // One wake channel + waker per process, created up front: the node
        // adapters (built by ThreadCluster::start) and the event loops
        // (spawned last) share them.
        let mut wake_rxs = Vec::with_capacity(n);
        let mut wakers: Vec<Arc<Waker>> = Vec::with_capacity(n);
        for _ in 0..n {
            // lint:allow(P1): bootstrap wake channel, documented panic, no remote input yet
            let (tx, rx) = wake_channel().expect("wake channel");
            wake_rxs.push(rx);
            wakers.push(Arc::new(Waker::new(tx)));
        }

        // Outbound side: from i to j (i != j), a connected stream plus the
        // queue that feeds it, owned by process i's event loop.
        let mut outbound: OutboundMesh<N::Msg> = (0..n).map(|_| vec![]).collect();
        let mut writer_conns: WriterConns<N::Msg> = (0..n).map(|_| vec![]).collect();
        for (i, row) in outbound.iter_mut().enumerate() {
            for (j, addr) in addrs.iter().enumerate() {
                if i == j {
                    row.push(None);
                } else {
                    // lint:allow(P1): bootstrap connect, documented panic, no remote input yet
                    let mut stream = TcpStream::connect(addr).expect("connect to peer");
                    // lint:allow(P1): bootstrap, documented panic, no remote input yet
                    stream.set_nodelay(true).expect("nodelay");
                    // Identify ourselves so the acceptor can route. Written
                    // while the stream is still blocking — the handshake is
                    // part of the start barrier.
                    // lint:allow(P1): bootstrap handshake, documented panic, no remote input yet — lint:allow(W2): i < n and start() asserts n fits in u16
                    stream.write_all(&(i as u16).to_le_bytes()).expect("handshake");
                    // lint:allow(P1): bootstrap, documented panic, no remote input yet
                    stream.set_nonblocking(true).expect("nonblocking");
                    let queue = Arc::new(PeerQueue::new());
                    writer_conns[i].push(OutboundLink {
                        // lint:allow(W2): j < n and start() asserts n fits in u16
                        peer: ProcessId::new(j as u16),
                        addr: Some(*addr),
                        stream,
                        queue: Arc::clone(&queue),
                    });
                    row.push(Some(queue));
                }
            }
        }

        let writers_for_nodes = outbound.clone();
        let wakers_for_nodes = wakers.clone();
        let inner = ThreadCluster::start(n, move |p| MsgOverTcp {
            node: factory(p),
            me: p,
            writers: writers_for_nodes[p.as_usize()].clone(),
            waker: Some(Arc::clone(&wakers_for_nodes[p.as_usize()])),
        });

        // Inbound side: accept n-1 connections per listener (blocking — the
        // start barrier again), read the 2-byte sender handshake, then flip
        // the stream nonblocking for the event loop.
        let mut inbound_conns: Vec<Vec<TcpStream>> = Vec::with_capacity(n);
        for listener in &listeners {
            let mut accepted = Vec::with_capacity(n - 1);
            for _ in 0..(n - 1) {
                // lint:allow(P1): bootstrap accept, documented panic, no remote input yet
                let (mut stream, _) = listener.accept().expect("accept peer connection");
                // lint:allow(P1): bootstrap, documented panic, no remote input yet
                stream.set_nodelay(true).expect("nodelay");
                let mut id = [0u8; 2];
                // lint:allow(P1): bootstrap handshake, documented panic, no remote input yet
                stream.read_exact(&mut id).expect("handshake");
                let _claimed_sender = ProcessId::new(u16::from_le_bytes(id));
                // lint:allow(P1): bootstrap, documented panic, no remote input yet
                stream.set_nonblocking(true).expect("nonblocking");
                accepted.push(stream);
            }
            inbound_conns.push(accepted);
        }

        // Spawn the event loops last, now that the node threads exist to
        // inject into. Each loop keeps its process's listener (flipped
        // nonblocking) so severed peers can redial mid-run.
        let mut io_loops = Vec::with_capacity(n);
        let mut fault_stats = Vec::with_capacity(n);
        for (j, ((inbound, writers), listener)) in
            inbound_conns.into_iter().zip(writer_conns).zip(listeners).enumerate()
        {
            // lint:allow(W2): j < n and start() asserts n fits in u16
            let me = ProcessId::new(j as u16);
            let inject = inner.message_injector(me);
            // lint:allow(P1): bootstrap, documented panic, no remote input yet
            listener.set_nonblocking(true).expect("nonblocking listener");
            let stats = Arc::new(NetFaultStats::default());
            fault_stats.push(Arc::clone(&stats));
            io_loops.push(event_loop::spawn(
                me,
                LoopTopology {
                    listener: Some(listener),
                    inbound,
                    outbound: writers,
                    faults: faults.clone(),
                    stats,
                },
                wake_rxs.remove(0),
                Arc::clone(&wakers[j]),
                inject,
            ));
        }

        TcpCluster { inner, outbound, io_loops, fault_stats }
    }

    /// Per-process fault/reconnect counter snapshots (indexed by process
    /// id). All zeros unless a fault plan armed or a link actually died.
    pub fn fault_reports(&self) -> Vec<NetFaultReport> {
        self.fault_stats.iter().map(|s| s.report()).collect()
    }

    /// Sends an application command to process `p`.
    pub fn send_command(&self, p: ProcessId, cmd: N::Command) {
        self.inner.send_command(p, cmd);
    }

    /// Collects outputs for (wall-clock) `dur`.
    pub fn run_for(&mut self, dur: std::time::Duration) -> Vec<NetOutput<N::Output>> {
        self.inner.run_for(dur)
    }

    /// Collects outputs until `count` have arrived or `timeout` elapses —
    /// the latency-friendly alternative to [`TcpCluster::run_for`] when
    /// the caller knows how many outputs to expect (benches, tests).
    pub fn wait_for_outputs(
        &mut self,
        count: usize,
        timeout: std::time::Duration,
    ) -> Vec<NetOutput<N::Output>> {
        self.inner.wait_for_outputs(count, timeout)
    }

    /// Stops node threads, event loops, and sockets. Never hangs on a
    /// dead peer: outbound backlog is flushed best-effort, not awaited.
    pub fn shutdown(self) {
        // Closing the queues stops new frames and lets each loop drain its
        // backlog; the wakes make that prompt.
        for row in &self.outbound {
            for q in row.iter().flatten() {
                q.close();
            }
        }
        for l in &self.io_loops {
            l.waker.wake();
        }
        // Node threads stop next — a node blocked in a backpressure push
        // was released by the close above.
        self.inner.shutdown();
        // Finally the loops: one last nonblocking flush pass, then the
        // sockets come down. Bounded by a poll tick even if a peer's
        // socket went silent without closing.
        for l in &self.io_loops {
            l.stop();
        }
        for l in self.io_loops {
            l.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_runtime::Context;
    use iabc_types::{CodecError, TrafficClass, WireSize};

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u32);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            4
        }
    }
    impl Encode for Num {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Num {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Num(u32::decode(buf)?))
        }
    }

    struct Echo;
    impl Node for Echo {
        type Msg = Num;
        type Command = u32;
        type Output = (ProcessId, u32);
        fn on_command(&mut self, cmd: u32, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.send_to_all(Num(cmd));
        }
        fn on_message(&mut self, from: ProcessId, m: Num, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.output((from, m.0));
        }
    }

    #[test]
    fn fanout_over_tcp() {
        let mut cluster = TcpCluster::start(3, |_| Echo);
        cluster.send_command(ProcessId::new(1), 77);
        let outs = cluster.wait_for_outputs(3, std::time::Duration::from_secs(5));
        assert_eq!(outs.len(), 3, "all three processes must receive the fanout");
        assert!(outs.iter().all(|o| o.output == (ProcessId::new(1), 77)));
        cluster.shutdown();
    }

    /// A classed test frame: odd values are ordering, even values bulk.
    #[derive(Clone, Debug, PartialEq)]
    struct Classed(u32);
    impl WireSize for Classed {
        fn wire_size(&self) -> usize {
            4
        }
        fn traffic_class(&self) -> TrafficClass {
            if self.0 % 2 == 1 { TrafficClass::Ordering } else { TrafficClass::Bulk }
        }
    }
    impl Encode for Classed {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Classed {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Classed(u32::decode(buf)?))
        }
    }

    #[test]
    fn mixed_class_traffic_over_tcp_delivers_everything() {
        struct MixedEcho;
        impl Node for MixedEcho {
            type Msg = Classed;
            type Command = u32;
            type Output = (ProcessId, u32);
            fn on_command(&mut self, cmd: u32, ctx: &mut Context<Classed, (ProcessId, u32)>) {
                ctx.send_to_all(Classed(cmd));
            }
            fn on_message(
                &mut self,
                from: ProcessId,
                m: Classed,
                ctx: &mut Context<Classed, (ProcessId, u32)>,
            ) {
                ctx.output((from, m.0));
            }
        }
        let mut cluster = TcpCluster::start(3, |_| MixedEcho);
        for v in 0..20u32 {
            cluster.send_command(ProcessId::new((v % 3) as u16), v);
        }
        let outs = cluster.wait_for_outputs(20 * 3, std::time::Duration::from_secs(10));
        assert_eq!(outs.len(), 20 * 3, "every classed frame must reach all processes");
        cluster.shutdown();
    }

    #[test]
    fn sequential_clusters_reuse_cleanly() {
        // The respawn pattern: a second cluster starting after the first
        // one's shutdown must come up clean (no leaked loops or wedged
        // sockets from the first).
        for round in 0..2u32 {
            let mut cluster = TcpCluster::start(2, |_| Echo);
            cluster.send_command(ProcessId::new(0), round);
            let outs = cluster.wait_for_outputs(2, std::time::Duration::from_secs(5));
            assert_eq!(outs.len(), 2);
            cluster.shutdown();
        }
    }
}
