//! Thread-per-connection TCP cluster: the architecture the event-driven
//! [`crate::tcp::TcpCluster`] replaced, kept as the measured control for
//! the `loopback_cluster` bench.
//!
//! Per process it spends `2·(n−1)` I/O threads plus one injector thread:
//! a blocking reader thread per accepted connection (decoding through the
//! copying [`FrameBuffer`] re-assembly path) and a flusher thread per
//! peer parked on the outbound [`PeerQueue`] condvar. Outbound semantics
//! match the event loop exactly — ordering-before-bulk priority drain,
//! whole-backlog batches, one vectored write per batch — so a bench
//! comparison isolates the *thread model and copy count*, not queueing
//! policy.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use iabc_runtime::Node;
use iabc_types::{Decode, Encode, ProcessId};

use crate::adapter::{MsgOverTcp, OutboundMesh};
use crate::cluster::ThreadCluster;
use crate::codec::{write_frame_into, FrameBuffer, Tagged, TaggedOwned};
use crate::queue::PeerQueue;
use crate::NetOutput;

/// A mesh of loop-back TCP connections between `n` local "processes",
/// with a blocking reader/flusher thread pair per connection.
///
/// Superseded by the event-driven [`crate::tcp::TcpCluster`]; retained as
/// the control arm of the transport bench and as the reference
/// implementation of the blocking I/O path.
pub struct ThreadedTcpCluster<N: Node>
where
    N::Msg: Encode,
{
    inner: ThreadCluster<MsgOverTcp<N>>,
    outbound: OutboundMesh<N::Msg>,
    flusher_handles: Vec<JoinHandle<()>>,
    reader_handles: Vec<JoinHandle<()>>,
    /// One `try_clone` of every accepted stream, kept so [`shutdown`]
    /// (`ThreadedTcpCluster::shutdown`) can shut the sockets down and
    /// unblock readers parked in `read()` on a peer that died without
    /// closing its end.
    reader_streams: Vec<TcpStream>,
}

/// The flusher loop of one peer connection: drain the queue in priority
/// order, encode the batch into a reused scratch buffer, push it with one
/// vectored write (see [`write_batch`]). A write failure means the peer is
/// gone: close the queue (future pushes drop silently, like sends to a
/// crashed process) and exit.
fn flusher_loop<M: Encode>(queue: &PeerQueue<M>, mut stream: TcpStream, from: ProcessId) {
    let mut scratch: Vec<u8> = Vec::new();
    let mut bounds: Vec<usize> = Vec::new();
    while let Some(batch) = queue.next_batch() {
        scratch.clear();
        bounds.clear();
        for msg in &batch {
            // An oversized frame is unencodable, not a transport error:
            // skip it (write_frame_into already rolled the buffer back).
            if write_frame_into(&Tagged { from, msg }, &mut scratch).is_ok() {
                bounds.push(scratch.len());
            }
        }
        if write_batch(&mut stream, &scratch, &bounds).is_err() {
            queue.close();
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Pushes one encoded batch to the socket: a single `write_vectored` over
/// the per-frame slices (`bounds[i]` is the end offset of frame `i` in
/// `scratch`), so the kernel gathers the frames in one syscall without a
/// second userspace copy. Sockets are free to accept only part of an
/// iovec, so a partial write falls back to `write_all` of the remaining
/// bytes — the frames are contiguous in the scratch buffer, which makes
/// the remainder a plain byte suffix regardless of which frame the short
/// write landed in.
fn write_batch(
    stream: &mut TcpStream,
    scratch: &[u8],
    bounds: &[usize],
) -> std::io::Result<()> {
    if scratch.is_empty() {
        return Ok(());
    }
    let mut slices: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(bounds.len());
    let mut start = 0;
    for &end in bounds {
        slices.push(std::io::IoSlice::new(&scratch[start..end]));
        start = end;
    }
    let written = loop {
        match stream.write_vectored(&slices) {
            Ok(n) => break n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    if written < scratch.len() {
        stream.write_all(&scratch[written..])?;
    }
    Ok(())
}

impl<N> ThreadedTcpCluster<N>
where
    N: Node + Send + 'static,
    N::Msg: Encode + Decode + Send,
    N::Command: Send,
    N::Output: Send,
{
    /// Binds `n` loop-back listeners, connects the full mesh, and starts
    /// the node threads.
    ///
    /// # Panics
    ///
    /// Panics if sockets cannot be bound or connected (loop-back only, so
    /// this indicates local resource exhaustion).
    pub fn start(n: usize, mut factory: impl FnMut(ProcessId) -> N) -> Self {
        assert!(n > 0, "need at least one process");
        // Process ids travel as u16 in the handshake and frame tags; every
        // `i as u16` below is bounded by this assert.
        assert!(n <= usize::from(u16::MAX) + 1, "process ids are u16 on the wire");
        // Bind one listener per process on an ephemeral port.
        // Setup-time expects below are documented under `# Panics`: they run
        // before any remote bytes exist, on loop-back sockets only, where a
        // failure means local resource exhaustion and there is no
        // connection to poison yet.
        let listeners: Vec<TcpListener> = (0..n)
            // lint:allow(P1): bootstrap bind, documented panic, no remote input yet
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loop-back listener"))
            .collect();
        let addrs: Vec<_> =
            // lint:allow(P1): bootstrap, documented panic, no remote input yet
            listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();

        // Writer side: from i to j (i != j), an outbound queue drained by a
        // flusher thread that owns the connected stream.
        let mut outbound: OutboundMesh<N::Msg> = (0..n).map(|_| vec![]).collect();
        let mut flusher_handles = Vec::new();
        for (i, row) in outbound.iter_mut().enumerate() {
            for (j, addr) in addrs.iter().enumerate() {
                if i == j {
                    row.push(None);
                } else {
                    // lint:allow(P1): bootstrap connect, documented panic, no remote input yet
                    let mut stream = TcpStream::connect(addr).expect("connect to peer");
                    // lint:allow(P1): bootstrap, documented panic, no remote input yet
                    stream.set_nodelay(true).expect("nodelay");
                    // Identify ourselves so the acceptor can route.
                    // lint:allow(P1): bootstrap handshake, documented panic, no remote input yet — lint:allow(W2): i < n and start() asserts n fits in u16
                    stream.write_all(&(i as u16).to_le_bytes()).expect("handshake");
                    let queue = Arc::new(PeerQueue::new());
                    // lint:allow(W2): i < n and start() asserts n fits in u16
                    let from = ProcessId::new(i as u16);
                    let flusher_queue = Arc::clone(&queue);
                    flusher_handles.push(std::thread::spawn(move || {
                        flusher_loop(&flusher_queue, stream, from);
                    }));
                    row.push(Some(queue));
                }
            }
        }

        let writers_for_nodes = outbound.clone();
        let inner = ThreadCluster::start(n, move |p| MsgOverTcp {
            node: factory(p),
            me: p,
            writers: writers_for_nodes[p.as_usize()].clone(),
            // Flushers park on the queue condvar; no loop to wake.
            waker: None,
        });

        // Reader threads: accept n-1 inbound connections per listener and
        // pump decoded frames into the owning node via its command channel —
        // we reuse the ThreadCluster's message path by injecting through a
        // dedicated channel pair.
        let injectors: Vec<Sender<(ProcessId, N::Msg)>> = (0..n)
            .map(|j| {
                let (tx, rx) = unbounded::<(ProcessId, N::Msg)>();
                // lint:allow(W2): j < n and start() asserts n fits in u16
                let inner_tx = inner.message_injector(ProcessId::new(j as u16));
                std::thread::spawn(move || {
                    while let Ok((from, msg)) = rx.recv() {
                        if inner_tx(from, msg).is_err() {
                            return;
                        }
                    }
                });
                tx
            })
            .collect();

        let mut reader_handles = Vec::new();
        let mut reader_streams = Vec::new();
        for (j, listener) in listeners.into_iter().enumerate() {
            for _ in 0..(n - 1) {
                // lint:allow(P1): bootstrap accept, documented panic, no remote input yet
                let (stream, _) = listener.accept().expect("accept peer connection");
                // lint:allow(P1): bootstrap, documented panic, no remote input yet
                stream.set_nodelay(true).expect("nodelay");
                // lint:allow(P1): bootstrap, documented panic, no remote input yet
                reader_streams.push(stream.try_clone().expect("clone reader stream"));
                let inject = injectors[j].clone();
                reader_handles.push(std::thread::spawn(move || {
                    reader_loop::<N>(stream, inject);
                }));
            }
        }

        ThreadedTcpCluster { inner, outbound, flusher_handles, reader_handles, reader_streams }
    }

    /// Sends an application command to process `p`.
    pub fn send_command(&self, p: ProcessId, cmd: N::Command) {
        self.inner.send_command(p, cmd);
    }

    /// Collects outputs for (wall-clock) `dur`.
    pub fn run_for(&mut self, dur: std::time::Duration) -> Vec<NetOutput<N::Output>> {
        self.inner.run_for(dur)
    }

    /// Collects outputs until `count` have arrived or `timeout` elapses.
    pub fn wait_for_outputs(
        &mut self,
        count: usize,
        timeout: std::time::Duration,
    ) -> Vec<NetOutput<N::Output>> {
        self.inner.wait_for_outputs(count, timeout)
    }

    /// Stops node threads and closes sockets.
    pub fn shutdown(self) {
        // Closing the queues lets each flusher drain its backlog and shut
        // its stream down, which in turn unblocks the remote readers.
        for row in &self.outbound {
            for q in row.iter().flatten() {
                q.close();
            }
        }
        for h in self.flusher_handles {
            let _ = h.join();
        }
        self.inner.shutdown();
        // A reader whose peer died *without* closing its socket (a hung or
        // killed flusher never reaches its own shutdown call) stays parked
        // in `read()` forever; shutting the accepted sockets down here
        // forces those reads to return, so the joins below can never hang.
        for s in &self.reader_streams {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in self.reader_handles {
            let _ = h.join();
        }
    }
}

fn reader_loop<N>(mut stream: TcpStream, inject: Sender<(ProcessId, N::Msg)>)
where
    N: Node,
    N::Msg: Decode,
{
    // Handshake: the 2-byte sender id.
    let mut id = [0u8; 2];
    if std::io::Read::read_exact(&mut stream, &mut id).is_err() {
        return;
    }
    let _claimed_sender = ProcessId::new(u16::from_le_bytes(id));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match frames.next_frame::<TaggedOwned<N::Msg>>() {
                Ok(Some(t)) => {
                    if inject.send((t.from, t.msg)).is_err() {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Corrupt or oversized frame: the buffer is poisoned
                    // (framing is unrecoverable), so tear the connection
                    // down instead of spinning on the same bytes.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // peer closed
            Ok(read) => frames.extend(&chunk[..read]),
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::write_frame;
    use crate::queue::tests::Classed;
    use iabc_runtime::Context;
    use iabc_types::{CodecError, WireSize};

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u32);
    impl WireSize for Num {
        fn wire_size(&self) -> usize {
            4
        }
    }
    impl Encode for Num {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }
    impl Decode for Num {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            Ok(Num(u32::decode(buf)?))
        }
    }

    struct Echo;
    impl Node for Echo {
        type Msg = Num;
        type Command = u32;
        type Output = (ProcessId, u32);
        fn on_command(&mut self, cmd: u32, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.send_to_all(Num(cmd));
        }
        fn on_message(&mut self, from: ProcessId, m: Num, ctx: &mut Context<Num, (ProcessId, u32)>) {
            ctx.output((from, m.0));
        }
    }

    #[test]
    fn corrupt_stream_drops_connection_after_first_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let (tx, rx) = unbounded::<(ProcessId, Num)>();
        let reader = std::thread::spawn(move || reader_loop::<Echo>(server, tx));

        // Handshake, then one good frame.
        client.write_all(&1u16.to_le_bytes()).unwrap();
        write_frame(&Tagged { from: ProcessId::new(1), msg: &Num(42) }, &mut client).unwrap();
        // A malformed frame: the length prefix says 2 bytes, which can
        // never decode as a Tagged<Num>.
        client.write_all(&2u32.to_le_bytes()).unwrap();
        client.write_all(&[0xAB, 0xCD]).unwrap();
        // A good frame after the corruption must never be delivered (the
        // reader may already have torn the socket down — ignore errors).
        let _ = write_frame(&Tagged { from: ProcessId::new(1), msg: &Num(7) }, &mut client);

        let first = rx.recv_timeout(std::time::Duration::from_secs(5));
        assert_eq!(first.unwrap(), (ProcessId::new(1), Num(42)));
        // The reader drops the connection and its injector on first error:
        // the channel disconnects instead of yielding Num(7).
        assert!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).is_err(),
            "no frame may be delivered after a decode error"
        );
        reader.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_a_reader_stuck_on_a_silent_peer() {
        // A peer that dies without closing its socket (hung flusher, killed
        // process) leaves the reader parked in read(); shutting the
        // accepted socket down — what ThreadedTcpCluster::shutdown does
        // before joining — must force that read to return.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let shutdown_handle = server.try_clone().unwrap();
        let (tx, rx) = unbounded::<(ProcessId, Num)>();
        let (done_tx, done_rx) = unbounded::<()>();
        std::thread::spawn(move || {
            reader_loop::<Echo>(server, tx);
            let _ = done_tx.send(());
        });
        // Handshake, then silence: the reader is now blocked in read().
        client.write_all(&1u16.to_le_bytes()).unwrap();
        assert!(
            done_rx.recv_timeout(std::time::Duration::from_millis(100)).is_err(),
            "reader must still be blocked on the silent peer"
        );
        shutdown_handle.shutdown(std::net::Shutdown::Both).unwrap();
        assert!(
            done_rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok(),
            "socket shutdown must unblock the reader"
        );
        drop(client);
        drop(rx);
    }

    #[test]
    fn fanout_over_threaded_tcp() {
        let mut cluster = ThreadedTcpCluster::start(3, |_| Echo);
        cluster.send_command(ProcessId::new(1), 77);
        let outs = cluster.wait_for_outputs(3, std::time::Duration::from_secs(5));
        assert_eq!(outs.len(), 3, "all three processes must receive the fanout");
        assert!(outs.iter().all(|o| o.output == (ProcessId::new(1), 77)));
        cluster.shutdown();
    }

    #[test]
    fn flusher_coalesces_a_batch_into_one_stream_write() {
        // Drive a real flusher thread over a socket pair and check that
        // every frame of a mixed burst arrives, ordering frames first.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let queue: Arc<PeerQueue<Classed>> = Arc::new(PeerQueue::new());
        // Fill the queue *before* the flusher starts, so the whole burst
        // is one batch (and one vectored write).
        for v in [2, 4, 1, 6, 3, 8, 5] {
            queue.enqueue(Classed(v));
        }
        let fq = Arc::clone(&queue);
        let flusher =
            std::thread::spawn(move || flusher_loop(&fq, stream, ProcessId::new(0)));

        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 4096];
        while got.len() < 7 {
            let read = std::io::Read::read(&mut server, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Classed>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(0));
                got.push(t.msg.0);
            }
        }
        assert_eq!(got, vec![1, 3, 5, 2, 4, 6, 8], "ordering lane must drain first");
        queue.close();
        flusher.join().unwrap();
    }

    /// A bulk frame big enough that a batch of them overflows any socket
    /// send buffer, forcing `write_vectored` to return short and the
    /// flusher to take the scratch-suffix `write_all` fallback.
    #[derive(Clone, Debug, PartialEq)]
    struct Big(u32);
    const BIG_LEN: usize = 4096;
    impl WireSize for Big {
        fn wire_size(&self) -> usize {
            4 + BIG_LEN
        }
    }
    impl Encode for Big {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
            buf.extend(std::iter::repeat_n((self.0 % 251) as u8, BIG_LEN));
        }
    }
    impl Decode for Big {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            let id = u32::decode(buf)?;
            let (body, rest) = buf.split_at(BIG_LEN);
            assert!(body.iter().all(|&b| b == (id % 251) as u8), "frame body corrupted");
            *buf = rest;
            Ok(Big(id))
        }
    }

    #[test]
    fn vectored_flush_survives_partial_writes_on_huge_batches() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        // ~2 MiB queued before the flusher starts: one batch, far past the
        // socket buffer, so the single write_vectored cannot take it all.
        const FRAMES: u32 = 512;
        let queue: Arc<PeerQueue<Big>> = Arc::new(PeerQueue::new());
        for v in 0..FRAMES {
            queue.enqueue(Big(v));
        }
        let fq = Arc::clone(&queue);
        let flusher = std::thread::spawn(move || flusher_loop(&fq, stream, ProcessId::new(2)));

        let mut frames = FrameBuffer::new();
        let mut got: Vec<u32> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        while got.len() < FRAMES as usize {
            let read = std::io::Read::read(&mut server, &mut chunk).unwrap();
            assert!(read > 0, "stream closed before the batch arrived");
            frames.extend(&chunk[..read]);
            while let Some(t) = frames.next_frame::<TaggedOwned<Big>>().unwrap() {
                assert_eq!(t.from, ProcessId::new(2));
                got.push(t.msg.0);
            }
        }
        // Every frame arrived intact (the Decode impl checks the body),
        // in FIFO order — whichever frame the short write split.
        assert_eq!(got, (0..FRAMES).collect::<Vec<_>>());
        queue.close();
        flusher.join().unwrap();
    }
}
