//! Property tests of the frame codec against adversarial input: a remote
//! peer controls every byte that reaches [`FrameBuffer`], so no byte
//! sequence — malformed, truncated, oversized, or arbitrarily re-chunked —
//! may panic the process. Errors must surface as `Err` and poison the
//! buffer (rule P1's contract: poison the connection, not the process).

use iabc_net::codec::{write_frame_into, FrameBuffer, MAX_FRAME};
use proptest::prelude::*;

/// Drains the buffer: decodes until it yields `None` (needs more bytes) or
/// errors. Returns the decoded values and whether an error occurred.
fn drain(fb: &mut FrameBuffer) -> (Vec<u64>, bool) {
    let mut values = Vec::new();
    loop {
        match fb.next_frame::<u64>() {
            Ok(Some(v)) => values.push(v),
            Ok(None) => return (values, false),
            Err(_) => return (values, true),
        }
    }
}

proptest! {
    /// Arbitrary garbage never panics, and the first decode error is
    /// sticky: every later call fails too (the stream cannot resync).
    #[test]
    fn garbage_bytes_never_panic_and_errors_are_sticky(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..16),
    ) {
        let mut fb = FrameBuffer::new();
        let mut errored = false;
        for chunk in &chunks {
            fb.extend(chunk);
            let (_, err) = drain(&mut fb);
            if errored {
                // Once poisoned, the buffer must keep failing fast.
                prop_assert!(fb.next_frame::<u64>().is_err());
            }
            errored = errored || err;
            prop_assert_eq!(fb.is_poisoned(), errored);
        }
    }

    /// A valid frame stream decodes to the same values no matter how the
    /// bytes are chunked on the way in (TCP owes us no message boundaries).
    #[test]
    fn valid_stream_survives_arbitrary_rechunking(
        values in proptest::collection::vec(any::<u64>(), 0..12),
        cuts in proptest::collection::vec(0usize..4096, 0..24),
    ) {
        let mut wire = Vec::new();
        for v in &values {
            write_frame_into(v, &mut wire).unwrap();
        }
        // Split the wire bytes at pseudo-arbitrary points.
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        let mut rest: &[u8] = &wire;
        for cut in cuts {
            let k = cut.min(rest.len());
            let (head, tail) = rest.split_at(k);
            rest = tail;
            fb.extend(head);
            let (vs, err) = drain(&mut fb);
            prop_assert!(!err, "valid prefix must not error");
            decoded.extend(vs);
        }
        fb.extend(rest);
        let (vs, err) = drain(&mut fb);
        prop_assert!(!err);
        decoded.extend(vs);
        prop_assert_eq!(decoded, values);
        prop_assert_eq!(fb.pending_bytes(), 0);
    }

    /// A truncated frame is "need more bytes", never an error — until the
    /// length prefix itself is corrupt.
    #[test]
    fn truncated_frames_wait_instead_of_failing(
        v in any::<u64>(),
        keep in 0usize..12,
    ) {
        let mut wire = Vec::new();
        write_frame_into(&v, &mut wire).unwrap();
        let keep = keep.min(wire.len().saturating_sub(1));
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..keep]);
        prop_assert!(matches!(fb.next_frame::<u64>(), Ok(None)));
        prop_assert!(!fb.is_poisoned());
        // Completing the frame delivers it.
        fb.extend(&wire[keep..]);
        prop_assert_eq!(fb.next_frame::<u64>().unwrap(), Some(v));
    }

    /// An oversized length prefix errors immediately and poisons the
    /// buffer; bytes fed afterwards are discarded, not accumulated.
    #[test]
    fn oversized_length_prefix_poisons(extra in 1u32..1024) {
        let bad_len = (MAX_FRAME as u32).saturating_add(extra);
        let mut fb = FrameBuffer::new();
        fb.extend(&bad_len.to_le_bytes());
        prop_assert!(fb.next_frame::<u64>().is_err());
        prop_assert!(fb.is_poisoned());
        fb.extend(&[0u8; 32]);
        prop_assert_eq!(fb.pending_bytes(), 0);
        prop_assert!(fb.next_frame::<u64>().is_err());
    }
}
