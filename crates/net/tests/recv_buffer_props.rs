//! Property tests pinning [`RecvBuffer`] (the pooled, decode-in-place
//! receive path the event loop reads into) to [`FrameBuffer`] (the owned
//! copy-then-decode path) byte for byte: fed the same stream under any
//! re-chunking, the two must decode the same values, buffer the same
//! number of pending bytes, and poison on exactly the same input. The
//! zero-copy rewrite is an optimization, never a semantic change.

use iabc_net::codec::{write_frame_into, FrameBuffer, RecvBuffer};
use iabc_net::BufferPool;
use proptest::prelude::*;

/// Drains a [`FrameBuffer`]: decoded values plus whether decoding errored.
fn drain_owned(fb: &mut FrameBuffer) -> (Vec<u64>, bool) {
    let mut values = Vec::new();
    loop {
        match fb.next_frame::<u64>() {
            Ok(Some(v)) => values.push(v),
            Ok(None) => return (values, false),
            Err(_) => return (values, true),
        }
    }
}

/// Drains a [`RecvBuffer`] the same way.
fn drain_pooled(rb: &mut RecvBuffer) -> (Vec<u64>, bool) {
    let mut values = Vec::new();
    loop {
        match rb.next_frame::<u64>() {
            Ok(Some(v)) => values.push(v),
            Ok(None) => return (values, false),
            Err(_) => return (values, true),
        }
    }
}

/// Feeds one chunk to the pooled buffer the way the event loop does: ask
/// for spare room, copy the "socket" bytes in, commit what was written.
fn feed_pooled(rb: &mut RecvBuffer, chunk: &[u8]) {
    if chunk.is_empty() {
        return;
    }
    let spare = rb.spare(chunk.len());
    spare[..chunk.len()].copy_from_slice(chunk);
    rb.commit(chunk.len());
}

proptest! {
    /// A valid frame stream cut at arbitrary points decodes identically
    /// through both paths, chunk by chunk: same values in the same order,
    /// same pending-byte count after every chunk, nothing left at the end.
    #[test]
    fn decode_in_place_matches_owned_decode_under_rechunking(
        values in proptest::collection::vec(any::<u64>(), 0..12),
        cuts in proptest::collection::vec(0usize..4096, 0..24),
    ) {
        let mut wire = Vec::new();
        for v in &values {
            write_frame_into(v, &mut wire).unwrap();
        }
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        let mut fb = FrameBuffer::new();
        let mut via_pooled = Vec::new();
        let mut via_owned = Vec::new();
        let mut rest: &[u8] = &wire;
        for cut in cuts {
            let k = cut.min(rest.len());
            let (head, tail) = rest.split_at(k);
            rest = tail;
            feed_pooled(&mut rb, head);
            fb.extend(head);
            let (pv, perr) = drain_pooled(&mut rb);
            let (ov, oerr) = drain_owned(&mut fb);
            prop_assert!(!perr && !oerr, "valid prefix must not error");
            // Both buffers must agree mid-stream, not just at the end —
            // a frame may never be held back or delivered early.
            prop_assert_eq!(&pv, &ov);
            prop_assert_eq!(rb.pending_bytes(), fb.pending_bytes());
            via_pooled.extend(pv);
            via_owned.extend(ov);
        }
        feed_pooled(&mut rb, rest);
        fb.extend(rest);
        let (pv, perr) = drain_pooled(&mut rb);
        let (ov, oerr) = drain_owned(&mut fb);
        prop_assert!(!perr && !oerr);
        via_pooled.extend(pv);
        via_owned.extend(ov);
        prop_assert_eq!(&via_pooled, &values);
        prop_assert_eq!(&via_owned, &values);
        prop_assert_eq!(rb.pending_bytes(), 0);
        prop_assert_eq!(fb.pending_bytes(), 0);
        prop_assert!(!rb.is_poisoned());
        prop_assert!(!fb.is_poisoned());
    }

    /// Arbitrary garbage never panics either path, and both paths poison
    /// on exactly the same chunk, having delivered the same good prefix.
    #[test]
    fn both_paths_poison_identically_on_garbage(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..16),
    ) {
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        let mut fb = FrameBuffer::new();
        let mut errored = false;
        for chunk in &chunks {
            feed_pooled(&mut rb, chunk);
            fb.extend(chunk);
            let (pv, perr) = drain_pooled(&mut rb);
            let (ov, oerr) = drain_owned(&mut fb);
            prop_assert_eq!(pv, ov);
            prop_assert_eq!(perr, oerr, "paths must agree on where the stream breaks");
            if errored {
                // Poison is sticky on both sides.
                prop_assert!(rb.next_frame::<u64>().is_err());
                prop_assert!(fb.next_frame::<u64>().is_err());
            }
            errored = errored || perr;
            prop_assert_eq!(rb.is_poisoned(), errored);
            prop_assert_eq!(fb.is_poisoned(), errored);
        }
    }

    /// Short socket reads — `read(2)` returning fewer bytes than the spare
    /// room offered — change nothing: committing a stream in arbitrary
    /// sub-slices of larger `spare` requests still decodes every value.
    #[test]
    fn short_reads_into_oversized_spare_still_decode(
        values in proptest::collection::vec(any::<u64>(), 1..8),
        ask_extra in 1usize..256,
        commit_caps in proptest::collection::vec(1usize..7, 4..32),
    ) {
        let mut wire = Vec::new();
        for v in &values {
            write_frame_into(v, &mut wire).unwrap();
        }
        let pool = BufferPool::new();
        let mut rb = RecvBuffer::new(&pool);
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        let mut caps = commit_caps.iter().cycle();
        while offset < wire.len() {
            // Ask for more spare than we commit, like a real read would.
            let n = (*caps.next().unwrap()).min(wire.len() - offset);
            let spare = rb.spare(n + ask_extra);
            prop_assert!(spare.len() >= n + ask_extra);
            spare[..n].copy_from_slice(&wire[offset..offset + n]);
            rb.commit(n);
            offset += n;
            let (vs, err) = drain_pooled(&mut rb);
            prop_assert!(!err);
            decoded.extend(vs);
        }
        prop_assert_eq!(decoded, values);
        prop_assert_eq!(rb.pending_bytes(), 0);
    }
}
