//! Actions emitted by protocol state machines.

use iabc_types::{Duration, ProcessId};

use crate::timer::TimerId;

/// An effect requested by a node, to be performed by the executor.
///
/// `M` is the node's wire message type, `O` its application-visible output
/// type (e.g. an `adeliver` notification).
#[derive(Debug, Clone, PartialEq)]
pub enum Action<M, O> {
    /// Send `msg` to process `to` over the (quasi-)reliable channel.
    ///
    /// Sends to self are legal and are delivered back through
    /// [`Node::on_message`](crate::Node::on_message) (executors route them
    /// through a loop-back path that bypasses the NIC).
    Send {
        /// Destination process.
        to: ProcessId,
        /// The message.
        msg: M,
    },
    /// Request `on_timer(timer)` to run `delay` from now.
    SetTimer {
        /// How far in the future the timer fires.
        delay: Duration,
        /// Opaque id handed back on expiry.
        timer: TimerId,
    },
    /// Charge `duration` of CPU time to this process.
    ///
    /// The simulator's contention model serializes this work on the
    /// process's CPU resource *before* subsequent message processing; real
    /// executors ignore it (their CPU cost is, well, real). Protocols use
    /// this to model costs that their simulated representation skips — most
    /// importantly the paper's `rcv()` evaluation cost, which is the
    /// dominant source of indirect-consensus overhead in Figures 3 and 4.
    Work {
        /// Amount of CPU time consumed.
        duration: Duration,
    },
    /// Emit an application-visible output (e.g. `adeliver`).
    Output(O),
}

impl<M, O> Action<M, O> {
    /// Whether this action is a network send.
    pub fn is_send(&self) -> bool {
        matches!(self, Action::Send { .. })
    }

    /// Whether this action is an application output.
    pub fn is_output(&self) -> bool {
        matches!(self, Action::Output(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let send: Action<u8, ()> = Action::Send { to: ProcessId::new(1), msg: 7 };
        let out: Action<u8, ()> = Action::Output(());
        let work: Action<u8, ()> = Action::Work { duration: Duration::from_micros(1) };
        assert!(send.is_send() && !send.is_output());
        assert!(out.is_output() && !out.is_send());
        assert!(!work.is_send() && !work.is_output());
    }
}
