//! The execution context handed to protocol callbacks.

use iabc_types::{Duration, ProcessId, Time};

use crate::action::Action;
use crate::timer::TimerId;

/// Collects the [`Action`]s a node produces while handling one event, and
/// exposes the read-only facts a protocol may depend on (its identity, the
/// system size, the current time).
///
/// A fresh context is passed to every callback; the executor drains it with
/// [`Context::take_actions`] afterwards. Actions are performed in the order
/// they were pushed.
#[derive(Debug)]
pub struct Context<M, O> {
    me: ProcessId,
    n: usize,
    now: Time,
    actions: Vec<Action<M, O>>,
}

impl<M, O> Context<M, O> {
    /// Creates a context for process `me` in a system of `n` processes at
    /// (virtual) time `now`.
    pub fn new(me: ProcessId, n: usize, now: Time) -> Self {
        Context { me, n, now, actions: Vec::new() }
    }

    /// The process this context belongs to.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current (virtual) time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` (self-sends allowed).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every process **including** the sender itself —
    /// the paper's `send to all` (its system model includes the sender in
    /// "all").
    pub fn send_to_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for p in ProcessId::all(self.n) {
            self.actions.push(Action::Send { to: p, msg: msg.clone() });
        }
    }

    /// Sends `msg` to every process except the sender.
    pub fn send_to_others(&mut self, msg: M)
    where
        M: Clone,
    {
        for p in ProcessId::all(self.n) {
            if p != self.me {
                self.actions.push(Action::Send { to: p, msg: msg.clone() });
            }
        }
    }

    /// Schedules `on_timer(timer)` to run `delay` from now.
    pub fn set_timer(&mut self, delay: Duration, timer: TimerId) {
        self.actions.push(Action::SetTimer { delay, timer });
    }

    /// Charges CPU work to this process (see [`Action::Work`]).
    /// Zero-duration work is elided.
    pub fn work(&mut self, duration: Duration) {
        if !duration.is_zero() {
            self.actions.push(Action::Work { duration });
        }
    }

    /// Emits an application-visible output.
    pub fn output(&mut self, out: O) {
        self.actions.push(Action::Output(out));
    }

    /// Number of actions collected so far.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether no actions have been collected.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Drains the collected actions, leaving the context empty and reusable.
    pub fn take_actions(&mut self) -> Vec<Action<M, O>> {
        std::mem::take(&mut self.actions)
    }

    /// Advances the context clock (used by executors that reuse a context
    /// across events).
    pub fn set_now(&mut self, now: Time) {
        self.now = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ctx = Context<&'static str, u32>;

    #[test]
    fn send_to_all_includes_self() {
        let mut ctx = Ctx::new(ProcessId::new(1), 3, Time::ZERO);
        ctx.send_to_all("m");
        let dests: Vec<_> = ctx
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(dests, ProcessId::all(3).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_others_excludes_self() {
        let mut ctx = Ctx::new(ProcessId::new(1), 3, Time::ZERO);
        ctx.send_to_others("m");
        let dests: Vec<_> = ctx
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(dests, vec![ProcessId::new(0), ProcessId::new(2)]);
    }

    #[test]
    fn zero_work_is_elided() {
        let mut ctx = Ctx::new(ProcessId::new(0), 1, Time::ZERO);
        ctx.work(Duration::ZERO);
        assert!(ctx.is_empty());
        ctx.work(Duration::from_nanos(1));
        assert_eq!(ctx.len(), 1);
    }

    #[test]
    fn actions_preserve_order() {
        let mut ctx = Ctx::new(ProcessId::new(0), 2, Time::ZERO);
        ctx.output(1);
        ctx.send(ProcessId::new(1), "x");
        ctx.output(2);
        let acts = ctx.take_actions();
        assert!(matches!(acts[0], Action::Output(1)));
        assert!(matches!(acts[1], Action::Send { .. }));
        assert!(matches!(acts[2], Action::Output(2)));
        assert!(ctx.is_empty());
    }

    #[test]
    fn clock_can_be_advanced() {
        let mut ctx = Ctx::new(ProcessId::new(0), 1, Time::ZERO);
        ctx.set_now(Time::from_nanos(5));
        assert_eq!(ctx.now(), Time::from_nanos(5));
    }
}
