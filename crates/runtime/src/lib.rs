//! Sans-io protocol runtime abstractions.
//!
//! Every protocol in this workspace (reliable broadcast, ◇S consensus,
//! atomic broadcast, failure detectors) is written as a *pure state machine*:
//! it reacts to events by mutating its state and pushing [`Action`]s into
//! a [`Context`]. No I/O, no clocks, no threads — which is what lets the
//! *same* protocol code run under the deterministic simulator (`iabc-sim`),
//! the in-process thread runtime, and the TCP runtime (`iabc-net`), exactly
//! like the paper's Neko framework ran the same Java protocols in simulation
//! and on the cluster.
//!
//! # Example
//!
//! ```
//! use iabc_runtime::{Context, Node};
//! use iabc_types::{ProcessId, WireSize};
//!
//! /// A node that echoes every message back to its sender.
//! struct Echo;
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Ping(u32);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//!
//! impl Node for Echo {
//!     type Msg = Ping;
//!     type Command = ();
//!     type Output = ();
//!     fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Context<Ping, ()>) {
//!         ctx.send(from, msg);
//!     }
//! }
//!
//! let mut ctx = Context::new(ProcessId::new(0), 3, iabc_types::Time::ZERO);
//! Echo.on_message(ProcessId::new(1), Ping(7), &mut ctx);
//! assert_eq!(ctx.take_actions().len(), 1);
//! ```

pub mod action;
pub mod context;
pub mod node;
pub mod timer;

pub use action::Action;
pub use context::Context;
pub use node::Node;
pub use timer::TimerId;
