//! The `Node` trait implemented by every composed protocol stack.

use std::fmt;

use iabc_types::{ProcessId, WireSize};

use crate::context::Context;
use crate::timer::TimerId;

/// A complete protocol stack for one process, written sans-io.
///
/// Executors drive a node through four entry points; the node reacts by
/// pushing [`Action`](crate::Action)s into the [`Context`]. All callbacks
/// default to no-ops so simple nodes only implement what they use.
///
/// Determinism contract: a node must base its behaviour only on its own
/// state and the arguments of the callback — never on ambient clocks,
/// randomness, or thread identity. This is what makes simulator runs
/// reproducible bit-for-bit from a seed.
pub trait Node {
    /// Wire message type exchanged between nodes of this stack.
    ///
    /// `WireSize` is required because executors charge the network model by
    /// encoded size (the whole point of indirect consensus is how many bytes
    /// consensus puts on the wire).
    type Msg: Clone + fmt::Debug + WireSize;

    /// Application command type (e.g. "a-broadcast this payload").
    type Command;

    /// Application output type (e.g. "a-delivered this message").
    type Output;

    /// Invoked once, before any other callback, when the system starts.
    fn on_start(&mut self, ctx: &mut Context<Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// Invoked when the application issues a command.
    fn on_command(&mut self, cmd: Self::Command, ctx: &mut Context<Self::Msg, Self::Output>) {
        let _ = (cmd, ctx);
    }

    /// Invoked when a message from `from` arrives.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<Self::Msg, Self::Output>,
    ) {
        let _ = (from, msg, ctx);
    }

    /// Invoked when a timer set through the context expires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<Self::Msg, Self::Output>) {
        let _ = (timer, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::Time;

    #[derive(Clone, Debug, PartialEq)]
    struct Unit;
    impl WireSize for Unit {
        fn wire_size(&self) -> usize {
            0
        }
    }

    struct Counter {
        msgs: usize,
        timers: usize,
    }

    impl Node for Counter {
        type Msg = Unit;
        type Command = ();
        type Output = usize;

        fn on_message(&mut self, _from: ProcessId, _msg: Unit, ctx: &mut Context<Unit, usize>) {
            self.msgs += 1;
            ctx.output(self.msgs);
        }

        fn on_timer(&mut self, _timer: TimerId, _ctx: &mut Context<Unit, usize>) {
            self.timers += 1;
        }
    }

    #[test]
    fn default_callbacks_are_noops() {
        struct Passive;
        impl Node for Passive {
            type Msg = Unit;
            type Command = ();
            type Output = ();
        }
        let mut node = Passive;
        let mut ctx = Context::new(ProcessId::new(0), 1, Time::ZERO);
        node.on_start(&mut ctx);
        node.on_command((), &mut ctx);
        node.on_message(ProcessId::new(0), Unit, &mut ctx);
        node.on_timer(TimerId::new(0, 0), &mut ctx);
        assert!(ctx.is_empty());
    }

    #[test]
    fn overridden_callbacks_run() {
        let mut node = Counter { msgs: 0, timers: 0 };
        let mut ctx = Context::new(ProcessId::new(0), 1, Time::ZERO);
        node.on_message(ProcessId::new(0), Unit, &mut ctx);
        node.on_message(ProcessId::new(0), Unit, &mut ctx);
        node.on_timer(TimerId::new(0, 0), &mut ctx);
        assert_eq!(node.msgs, 2);
        assert_eq!(node.timers, 1);
        assert_eq!(ctx.take_actions().len(), 2);
    }
}
