//! Timer identifiers.

use std::fmt;

/// Identifies a timer set by a protocol.
///
/// Executors treat timer ids as opaque: when the deadline of a timer set via
/// [`Context::set_timer`](crate::Context::set_timer) elapses, the node's
/// [`Node::on_timer`](crate::Node::on_timer) is invoked with the same id.
/// Timers are *not* cancellable — protocols are written to tolerate stale
/// fires by checking their state (the usual sans-io discipline, and the only
/// behaviour that is robust on real networks anyway).
///
/// The two fields are free for the protocol to use; composed stacks
/// conventionally use `kind` to route to a sub-protocol and `data` for the
/// sub-protocol's own multiplexing (round numbers, heartbeat slots, …).
///
/// # Example
///
/// ```
/// use iabc_runtime::TimerId;
/// const KIND_HEARTBEAT: u32 = 1;
/// let t = TimerId::new(KIND_HEARTBEAT, 42);
/// assert_eq!(t.kind(), 1);
/// assert_eq!(t.data(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId {
    kind: u32,
    data: u64,
}

impl TimerId {
    /// Creates a timer id from a protocol-chosen kind and payload.
    pub const fn new(kind: u32, data: u64) -> Self {
        TimerId { kind, data }
    }

    /// The routing tag.
    pub const fn kind(self) -> u32 {
        self.kind
    }

    /// The protocol-specific payload.
    pub const fn data(self) -> u64 {
        self.data
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Timer({}, {})", self.kind, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let t = TimerId::new(3, 999);
        assert_eq!(t.kind(), 3);
        assert_eq!(t.data(), 999);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", TimerId::new(1, 2)), "Timer(1, 2)");
    }
}
