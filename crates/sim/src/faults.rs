//! Fault injection: crash schedules and quasi-reliable message loss.
//!
//! The paper's system model allows crash failures over *quasi-reliable*
//! channels: a message from a process that crashes may be lost. The
//! simulator realizes this two ways:
//!
//! 1. **Physically**: when a process crashes, everything still inside the
//!    host (CPU send queue, NIC transmit queue) dies with it; only frames
//!    that already left the NIC get delivered.
//! 2. **Scripted** ([`SimWorld::set_drop_filter`]): tests can drop specific
//!    messages of a crashing sender to reproduce the paper's §2.2
//!    counterexample deterministically (the initiator's payload is lost but
//!    its consensus traffic survives).
//!
//! [`SimWorld::set_drop_filter`]: crate::SimWorld::set_drop_filter

use iabc_types::{ProcessId, Time};

/// When each faulty process crashes.
///
/// # Example
///
/// ```
/// use iabc_sim::CrashSchedule;
/// use iabc_types::{ProcessId, Time, Duration};
///
/// let s = CrashSchedule::new()
///     .crash(ProcessId::new(0), Time::ZERO + Duration::from_millis(10));
/// assert_eq!(s.crashes().len(), 1);
/// assert!(s.is_faulty(ProcessId::new(0)));
/// assert!(!s.is_faulty(ProcessId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    crashes: Vec<(ProcessId, Time)>,
    restarts: Vec<(ProcessId, Time)>,
}

impl CrashSchedule {
    /// An empty (fault-free) schedule.
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Adds a crash of `p` at time `at` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` already has a scheduled crash.
    pub fn crash(mut self, p: ProcessId, at: Time) -> Self {
        assert!(
            !self.is_faulty(p),
            "process {p} already has a scheduled crash"
        );
        self.crashes.push((p, at));
        self
    }

    /// Adds a crash of `p` at `at` followed by a restart at `restart_at`
    /// (builder style). At restart the world replaces `p`'s node with a
    /// freshly built one (the node factory runs again) and calls its
    /// `on_start` — modelling a process that reboots with empty volatile
    /// state and recovers from whatever it persisted (see
    /// `iabc_core::DurableDecidedLog`).
    ///
    /// # Panics
    ///
    /// Panics if `p` already has a scheduled crash or if `restart_at` is
    /// not after `at`.
    pub fn crash_restart(mut self, p: ProcessId, at: Time, restart_at: Time) -> Self {
        assert!(restart_at > at, "restart must come after the crash");
        self = self.crash(p, at);
        self.restarts.push((p, restart_at));
        self
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[(ProcessId, Time)] {
        &self.crashes
    }

    /// The scheduled restarts.
    pub fn restarts(&self) -> &[(ProcessId, Time)] {
        &self.restarts
    }

    /// Whether `p` is scheduled to crash at some point.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.crashes.iter().any(|&(q, _)| q == p)
    }

    /// Number of faulty processes.
    pub fn fault_count(&self) -> usize {
        self.crashes.len()
    }
}

/// A complete fault plan for a run: crashes, optionally followed by
/// restarts (crash-recovery). Message drops are configured on the world
/// directly because they need access to the message type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled crashes.
    pub crashes: CrashSchedule,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given crash schedule.
    pub fn with_crashes(crashes: CrashSchedule) -> Self {
        FaultPlan { crashes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::Duration;

    #[test]
    fn schedule_tracks_faulty_processes() {
        let s = CrashSchedule::new()
            .crash(ProcessId::new(1), Time::ZERO + Duration::from_secs(1))
            .crash(ProcessId::new(3), Time::ZERO + Duration::from_secs(2));
        assert_eq!(s.fault_count(), 2);
        assert!(s.is_faulty(ProcessId::new(1)));
        assert!(s.is_faulty(ProcessId::new(3)));
        assert!(!s.is_faulty(ProcessId::new(0)));
    }

    #[test]
    #[should_panic(expected = "already has a scheduled crash")]
    fn double_crash_panics() {
        let _ = CrashSchedule::new()
            .crash(ProcessId::new(0), Time::ZERO)
            .crash(ProcessId::new(0), Time::ZERO);
    }

    #[test]
    fn default_plan_is_fault_free() {
        assert_eq!(FaultPlan::none().crashes.fault_count(), 0);
        assert!(FaultPlan::none().crashes.restarts().is_empty());
    }

    #[test]
    fn crash_restart_schedules_both_events() {
        let t1 = Time::ZERO + Duration::from_millis(5);
        let t2 = Time::ZERO + Duration::from_millis(20);
        let s = CrashSchedule::new().crash_restart(ProcessId::new(2), t1, t2);
        assert_eq!(s.crashes(), &[(ProcessId::new(2), t1)]);
        assert_eq!(s.restarts(), &[(ProcessId::new(2), t2)]);
        assert!(s.is_faulty(ProcessId::new(2)));
    }

    #[test]
    #[should_panic(expected = "restart must come after the crash")]
    fn restart_before_crash_panics() {
        let _ = CrashSchedule::new().crash_restart(
            ProcessId::new(0),
            Time::ZERO + Duration::from_millis(5),
            Time::ZERO + Duration::from_millis(5),
        );
    }
}
