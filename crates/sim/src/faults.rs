//! Fault injection: crash schedules and quasi-reliable message loss.
//!
//! The paper's system model allows crash failures over *quasi-reliable*
//! channels: a message from a process that crashes may be lost. The
//! simulator realizes this two ways:
//!
//! 1. **Physically**: when a process crashes, everything still inside the
//!    host (CPU send queue, NIC transmit queue) dies with it; only frames
//!    that already left the NIC get delivered.
//! 2. **Scripted** ([`SimWorld::set_drop_filter`]): tests can drop specific
//!    messages of a crashing sender to reproduce the paper's §2.2
//!    counterexample deterministically (the initiator's payload is lost but
//!    its consensus traffic survives).
//!
//! [`SimWorld::set_drop_filter`]: crate::SimWorld::set_drop_filter

use std::collections::BTreeMap;

use iabc_types::{Duration, ProcessId, Time};

/// When each faulty process crashes.
///
/// # Example
///
/// ```
/// use iabc_sim::CrashSchedule;
/// use iabc_types::{ProcessId, Time, Duration};
///
/// let s = CrashSchedule::new()
///     .crash(ProcessId::new(0), Time::ZERO + Duration::from_millis(10));
/// assert_eq!(s.crashes().len(), 1);
/// assert!(s.is_faulty(ProcessId::new(0)));
/// assert!(!s.is_faulty(ProcessId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    crashes: Vec<(ProcessId, Time)>,
    restarts: Vec<(ProcessId, Time)>,
}

impl CrashSchedule {
    /// An empty (fault-free) schedule.
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Adds a crash of `p` at time `at` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` already has a scheduled crash.
    pub fn crash(mut self, p: ProcessId, at: Time) -> Self {
        assert!(
            !self.is_faulty(p),
            "process {p} already has a scheduled crash"
        );
        self.crashes.push((p, at));
        self
    }

    /// Adds a crash of `p` at `at` followed by a restart at `restart_at`
    /// (builder style). At restart the world replaces `p`'s node with a
    /// freshly built one (the node factory runs again) and calls its
    /// `on_start` — modelling a process that reboots with empty volatile
    /// state and recovers from whatever it persisted (see
    /// `iabc_core::DurableDecidedLog`).
    ///
    /// # Panics
    ///
    /// Panics if `p` already has a scheduled crash or if `restart_at` is
    /// not after `at`.
    pub fn crash_restart(mut self, p: ProcessId, at: Time, restart_at: Time) -> Self {
        assert!(restart_at > at, "restart must come after the crash");
        self = self.crash(p, at);
        self.restarts.push((p, restart_at));
        self
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[(ProcessId, Time)] {
        &self.crashes
    }

    /// The scheduled restarts.
    pub fn restarts(&self) -> &[(ProcessId, Time)] {
        &self.restarts
    }

    /// Whether `p` is scheduled to crash at some point.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.crashes.iter().any(|&(q, _)| q == p)
    }

    /// Number of faulty processes.
    pub fn fault_count(&self) -> usize {
        self.crashes.len()
    }
}

/// What the link-fault layer decided to do with one frame in flight.
///
/// Returned by [`LinkFaults::judge`]; the world applies it at the
/// `TxDone → RxArrive` edge (the frame has left the sender NIC but not yet
/// started propagating — the one point where the network itself can
/// misbehave without touching host state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Deliver normally.
    Pass,
    /// A partition window covers the link right now: the frame is lost.
    Partitioned,
    /// Randomly dropped by the lossy link.
    Dropped,
    /// Deliver the frame *and* a duplicate copy.
    Duplicated,
    /// Deliver after the given extra propagation delay.
    Delayed(Duration),
    /// Held back long enough for later frames on the link to overtake it
    /// (the world maps this to one extra propagation slot).
    Reordered,
}

/// One entry of the injected-fault trace (see [`LinkFaults::record_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTraceEntry {
    /// When the fault fired (virtual time).
    pub at: Time,
    /// Sending side of the affected link.
    pub from: ProcessId,
    /// Receiving side of the affected link.
    pub to: ProcessId,
    /// What was injected.
    pub fault: LinkFault,
}

/// A symmetric partition window between two processes: frames in either
/// direction are lost while `from <= now < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PartitionWindow {
    a: ProcessId,
    b: ProcessId,
    from: Time,
    until: Time,
}

/// Deterministic per-link fault behaviour: peer-pair partitions over time
/// windows plus seeded drop / duplicate / delay / reorder probabilities.
///
/// All randomness comes from a splitmix64 stream keyed on
/// `(seed, from, to, per-link frame counter)` — the same seed over the same
/// frame sequence always injects the identical fault trace, so faulty sim
/// runs replay bit-for-bit. Probabilities are expressed in permille
/// (0..=1000) of frames judged.
///
/// # Example
///
/// ```
/// use iabc_sim::{LinkFault, LinkFaults};
/// use iabc_types::{Duration, ProcessId, Time};
///
/// let mut lf = LinkFaults::new(42).partition(
///     ProcessId::new(0),
///     ProcessId::new(1),
///     Time::ZERO,
///     Time::ZERO + Duration::from_millis(10),
/// );
/// let at = Time::ZERO + Duration::from_millis(5);
/// assert_eq!(lf.judge(at, ProcessId::new(1), ProcessId::new(0)), LinkFault::Partitioned);
/// let healed = Time::ZERO + Duration::from_millis(10);
/// assert_eq!(lf.judge(healed, ProcessId::new(1), ProcessId::new(0)), LinkFault::Pass);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFaults {
    seed: u64,
    partitions: Vec<PartitionWindow>,
    drop_permille: u16,
    duplicate_permille: u16,
    delay_permille: u16,
    reorder_permille: u16,
    max_extra_delay: Duration,
    /// Per-link frame counters driving the deterministic draw stream.
    counters: BTreeMap<(ProcessId, ProcessId), u64>,
    trace: Option<Vec<FaultTraceEntry>>,
}

/// splitmix64 finalizer: a full-avalanche scramble of one 64-bit word.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl LinkFaults {
    /// A fault layer with the given seed and no faults configured yet.
    pub fn new(seed: u64) -> Self {
        LinkFaults {
            seed,
            partitions: Vec::new(),
            drop_permille: 0,
            duplicate_permille: 0,
            delay_permille: 0,
            reorder_permille: 0,
            max_extra_delay: Duration::ZERO,
            counters: BTreeMap::new(),
            trace: None,
        }
    }

    /// Adds a symmetric partition of `a` and `b` over `[from, until)`
    /// (builder style). Frames in either direction are lost while the
    /// window is open; the link heals the instant it closes.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from` or `a == b`.
    pub fn partition(mut self, a: ProcessId, b: ProcessId, from: Time, until: Time) -> Self {
        assert!(until > from, "partition window must be non-empty");
        assert!(a != b, "cannot partition a process from itself");
        self.partitions.push(PartitionWindow { a, b, from, until });
        self
    }

    /// Partitions `p` from every other process of an `n`-process world over
    /// `[from, until)` (builder style) — full isolation, the nemesis
    /// staple.
    pub fn isolate(mut self, p: ProcessId, n: usize, from: Time, until: Time) -> Self {
        for q in ProcessId::all(n) {
            if q != p {
                self = self.partition(p, q, from, until);
            }
        }
        self
    }

    /// Sets the per-frame drop probability in permille (builder style).
    pub fn drop(mut self, permille: u16) -> Self {
        self.drop_permille = permille;
        self.assert_budget();
        self
    }

    /// Sets the per-frame duplication probability in permille (builder
    /// style). A duplicated frame is delivered twice; dedup is the
    /// receiver's job (quasi-reliable channels only promise no *creation*,
    /// and the RB store already filters re-deliveries by id).
    pub fn duplicate(mut self, permille: u16) -> Self {
        self.duplicate_permille = permille;
        self.assert_budget();
        self
    }

    /// Sets the per-frame extra-delay probability in permille and the
    /// maximum extra delay (builder style). The actual delay is drawn
    /// uniformly from `[0, max_extra]` per affected frame.
    pub fn delay(mut self, permille: u16, max_extra: Duration) -> Self {
        self.delay_permille = permille;
        self.max_extra_delay = max_extra;
        self.assert_budget();
        self
    }

    /// Sets the per-frame reorder probability in permille (builder style).
    /// A reordered frame is held back one extra propagation slot so frames
    /// sent after it overtake it.
    pub fn reorder(mut self, permille: u16) -> Self {
        self.reorder_permille = permille;
        self.assert_budget();
        self
    }

    /// Enables recording of every injected fault (builder style); read the
    /// result back with [`LinkFaults::trace`]. Off by default because a
    /// long lossy run accumulates a large trace.
    pub fn record_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    fn assert_budget(&self) {
        let total = self.drop_permille
            + self.duplicate_permille
            + self.delay_permille
            + self.reorder_permille;
        assert!(
            total <= 1000,
            "fault probabilities exceed 1000 permille (got {total})"
        );
    }

    /// Whether any partition window covers the `a`–`b` link at `now`.
    pub fn partitioned_at(&self, now: Time, a: ProcessId, b: ProcessId) -> bool {
        self.partitions.iter().any(|w| {
            ((w.a == a && w.b == b) || (w.a == b && w.b == a)) && now >= w.from && now < w.until
        })
    }

    /// The recorded fault trace, if [`LinkFaults::record_trace`] was set.
    pub fn trace(&self) -> Option<&[FaultTraceEntry]> {
        self.trace.as_deref()
    }

    /// The next word of the per-link deterministic draw stream.
    fn draw(&mut self, from: ProcessId, to: ProcessId) -> u64 {
        let c = self.counters.entry((from, to)).or_insert(0);
        *c += 1;
        let link = ((from.as_usize() as u64) << 32) | to.as_usize() as u64;
        splitmix64(self.seed ^ splitmix64(link) ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Judges one frame leaving `from` for `to` at time `now`.
    ///
    /// Partition windows are checked first and consume no randomness (so a
    /// plan with only partitions injects exactly the same drops regardless
    /// of probability settings); otherwise one draw decides the frame's
    /// fate and, for delays, a second draw picks the extra delay.
    pub fn judge(&mut self, now: Time, from: ProcessId, to: ProcessId) -> LinkFault {
        let fault = self.decide(now, from, to);
        if fault != LinkFault::Pass {
            if let Some(trace) = &mut self.trace {
                trace.push(FaultTraceEntry { at: now, from, to, fault });
            }
        }
        fault
    }

    fn decide(&mut self, now: Time, from: ProcessId, to: ProcessId) -> LinkFault {
        if self.partitioned_at(now, from, to) {
            return LinkFault::Partitioned;
        }
        if self.drop_permille == 0
            && self.duplicate_permille == 0
            && self.delay_permille == 0
            && self.reorder_permille == 0
        {
            return LinkFault::Pass;
        }
        let roll = (self.draw(from, to) % 1000) as u16;
        if roll < self.drop_permille {
            return LinkFault::Dropped;
        }
        if roll < self.drop_permille + self.duplicate_permille {
            return LinkFault::Duplicated;
        }
        if roll < self.drop_permille + self.duplicate_permille + self.delay_permille {
            let span = self.max_extra_delay.as_nanos();
            let extra = if span == 0 {
                Duration::ZERO
            } else {
                Duration::from_nanos(self.draw(from, to) % (span + 1))
            };
            return LinkFault::Delayed(extra);
        }
        if roll
            < self.drop_permille
                + self.duplicate_permille
                + self.delay_permille
                + self.reorder_permille
        {
            return LinkFault::Reordered;
        }
        LinkFault::Pass
    }
}

/// A complete fault plan for a run: crashes, optionally followed by
/// restarts (crash-recovery), plus deterministic link faults (partitions,
/// drops, duplicates, delays). Scripted per-message drops are configured
/// on the world directly because they need access to the message type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled crashes.
    pub crashes: CrashSchedule,
    /// Link-level faults, if any. `None` leaves the `TxDone → RxArrive`
    /// edge untouched — bit-for-bit the fault-free behaviour.
    pub links: Option<LinkFaults>,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given crash schedule.
    pub fn with_crashes(crashes: CrashSchedule) -> Self {
        FaultPlan { crashes, links: None }
    }

    /// A plan with only link faults.
    pub fn with_links(links: LinkFaults) -> Self {
        FaultPlan { crashes: CrashSchedule::new(), links: Some(links) }
    }

    /// Installs link faults on this plan (builder style).
    pub fn links(mut self, links: LinkFaults) -> Self {
        self.links = Some(links);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::Duration;

    #[test]
    fn schedule_tracks_faulty_processes() {
        let s = CrashSchedule::new()
            .crash(ProcessId::new(1), Time::ZERO + Duration::from_secs(1))
            .crash(ProcessId::new(3), Time::ZERO + Duration::from_secs(2));
        assert_eq!(s.fault_count(), 2);
        assert!(s.is_faulty(ProcessId::new(1)));
        assert!(s.is_faulty(ProcessId::new(3)));
        assert!(!s.is_faulty(ProcessId::new(0)));
    }

    #[test]
    #[should_panic(expected = "already has a scheduled crash")]
    fn double_crash_panics() {
        let _ = CrashSchedule::new()
            .crash(ProcessId::new(0), Time::ZERO)
            .crash(ProcessId::new(0), Time::ZERO);
    }

    #[test]
    fn default_plan_is_fault_free() {
        assert_eq!(FaultPlan::none().crashes.fault_count(), 0);
        assert!(FaultPlan::none().crashes.restarts().is_empty());
    }

    #[test]
    fn crash_restart_schedules_both_events() {
        let t1 = Time::ZERO + Duration::from_millis(5);
        let t2 = Time::ZERO + Duration::from_millis(20);
        let s = CrashSchedule::new().crash_restart(ProcessId::new(2), t1, t2);
        assert_eq!(s.crashes(), &[(ProcessId::new(2), t1)]);
        assert_eq!(s.restarts(), &[(ProcessId::new(2), t2)]);
        assert!(s.is_faulty(ProcessId::new(2)));
    }

    #[test]
    #[should_panic(expected = "restart must come after the crash")]
    fn restart_before_crash_panics() {
        let _ = CrashSchedule::new().crash_restart(
            ProcessId::new(0),
            Time::ZERO + Duration::from_millis(5),
            Time::ZERO + Duration::from_millis(5),
        );
    }

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    fn at(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn partition_window_is_half_open_and_symmetric() {
        let mut lf = LinkFaults::new(0).partition(p(0), p(1), at(10), at(20));
        assert_eq!(lf.judge(at(9), p(0), p(1)), LinkFault::Pass);
        assert_eq!(lf.judge(at(10), p(0), p(1)), LinkFault::Partitioned);
        assert_eq!(lf.judge(at(15), p(1), p(0)), LinkFault::Partitioned);
        assert_eq!(lf.judge(at(20), p(0), p(1)), LinkFault::Pass);
        // Unrelated links are untouched.
        assert_eq!(lf.judge(at(15), p(0), p(2)), LinkFault::Pass);
    }

    #[test]
    fn isolate_partitions_every_link_of_the_victim() {
        let mut lf = LinkFaults::new(0).isolate(p(2), 4, at(0), at(5));
        for q in [p(0), p(1), p(3)] {
            assert_eq!(lf.judge(at(1), p(2), q), LinkFault::Partitioned);
            assert_eq!(lf.judge(at(1), q, p(2)), LinkFault::Partitioned);
        }
        assert_eq!(lf.judge(at(1), p(0), p(1)), LinkFault::Pass);
    }

    #[test]
    fn same_seed_same_frames_identical_fault_trace() {
        let run = |seed: u64| {
            let mut lf = LinkFaults::new(seed)
                .drop(100)
                .duplicate(50)
                .delay(100, Duration::from_millis(2))
                .reorder(50);
            let mut verdicts = Vec::new();
            for i in 0..500u64 {
                let from = p((i % 3) as u16);
                let to = p(((i + 1) % 3) as u16);
                verdicts.push(lf.judge(at(i), from, to));
            }
            verdicts
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    proptest::proptest! {
        /// Determinism over the whole input space: any plan shape judging
        /// any frame script must produce the identical verdict sequence
        /// when replayed from the same seed — the property nemesis runs
        /// lean on to reproduce a storm from its seed alone.
        #[test]
        fn any_plan_judges_any_script_identically_per_seed(
            seed in proptest::any::<u64>(),
            drop_pm in 0u16..400,
            dup_pm in 0u16..300,
            delay_pm in 0u16..200,
            script in proptest::collection::vec(
                (0u64..2_000, 0u16..4, 0u16..4),
                1..80,
            ),
        ) {
            let build = || {
                LinkFaults::new(seed)
                    .partition(p(0), p(1), at(100), at(600))
                    .drop(drop_pm)
                    .duplicate(dup_pm)
                    .delay(delay_pm, Duration::from_millis(3))
            };
            let mut a = build();
            let mut b = build();
            for &(t, from, to) in &script {
                if from == to {
                    continue;
                }
                proptest::prop_assert_eq!(
                    a.judge(at(t), p(from), p(to)),
                    b.judge(at(t), p(from), p(to))
                );
            }
        }
    }

    #[test]
    fn probabilities_hit_every_verdict_roughly_in_proportion() {
        let mut lf = LinkFaults::new(3)
            .drop(200)
            .duplicate(100)
            .delay(100, Duration::from_millis(1))
            .reorder(100);
        let mut drops = 0u32;
        let mut dups = 0u32;
        let mut delays = 0u32;
        let mut reorders = 0u32;
        let mut passes = 0u32;
        for i in 0..2000u64 {
            match lf.judge(at(i), p(0), p(1)) {
                LinkFault::Dropped => drops += 1,
                LinkFault::Duplicated => dups += 1,
                LinkFault::Delayed(d) => {
                    assert!(d <= Duration::from_millis(1));
                    delays += 1;
                }
                LinkFault::Reordered => reorders += 1,
                LinkFault::Pass => passes += 1,
                LinkFault::Partitioned => unreachable!("no partitions configured"),
            }
        }
        // 2000 draws at 20%/10%/10%/10%: each bucket must be populated and
        // in the right ballpark (loose bounds — the stream is fixed).
        assert!((200..=600).contains(&drops), "drops = {drops}");
        assert!((100..=350).contains(&dups), "dups = {dups}");
        assert!((100..=350).contains(&delays), "delays = {delays}");
        assert!((100..=350).contains(&reorders), "reorders = {reorders}");
        assert!(passes >= 800, "passes = {passes}");
    }

    #[test]
    fn trace_records_only_injected_faults() {
        let mut lf = LinkFaults::new(0)
            .partition(p(0), p(1), at(0), at(10))
            .record_trace();
        let _ = lf.judge(at(1), p(0), p(1)); // partitioned
        let _ = lf.judge(at(11), p(0), p(1)); // pass — not recorded
        let trace = lf.trace().unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace[0],
            FaultTraceEntry { at: at(1), from: p(0), to: p(1), fault: LinkFault::Partitioned }
        );
    }

    #[test]
    #[should_panic(expected = "exceed 1000 permille")]
    fn overcommitted_probability_budget_panics() {
        let _ = LinkFaults::new(0).drop(600).duplicate(500);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_partition_window_panics() {
        let _ = LinkFaults::new(0).partition(p(0), p(1), at(5), at(5));
    }

    #[test]
    fn plan_with_links_keeps_crashes_empty() {
        let plan = FaultPlan::with_links(LinkFaults::new(1).drop(10));
        assert_eq!(plan.crashes.fault_count(), 0);
        assert!(plan.links.is_some());
        assert!(FaultPlan::none().links.is_none());
    }
}
