//! Fault injection: crash schedules and quasi-reliable message loss.
//!
//! The paper's system model allows crash failures over *quasi-reliable*
//! channels: a message from a process that crashes may be lost. The
//! simulator realizes this two ways:
//!
//! 1. **Physically**: when a process crashes, everything still inside the
//!    host (CPU send queue, NIC transmit queue) dies with it; only frames
//!    that already left the NIC get delivered.
//! 2. **Scripted** ([`SimWorld::set_drop_filter`]): tests can drop specific
//!    messages of a crashing sender to reproduce the paper's §2.2
//!    counterexample deterministically (the initiator's payload is lost but
//!    its consensus traffic survives).
//!
//! [`SimWorld::set_drop_filter`]: crate::SimWorld::set_drop_filter

use iabc_types::{ProcessId, Time};

/// When each faulty process crashes.
///
/// # Example
///
/// ```
/// use iabc_sim::CrashSchedule;
/// use iabc_types::{ProcessId, Time, Duration};
///
/// let s = CrashSchedule::new()
///     .crash(ProcessId::new(0), Time::ZERO + Duration::from_millis(10));
/// assert_eq!(s.crashes().len(), 1);
/// assert!(s.is_faulty(ProcessId::new(0)));
/// assert!(!s.is_faulty(ProcessId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    crashes: Vec<(ProcessId, Time)>,
}

impl CrashSchedule {
    /// An empty (fault-free) schedule.
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Adds a crash of `p` at time `at` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` already has a scheduled crash.
    pub fn crash(mut self, p: ProcessId, at: Time) -> Self {
        assert!(
            !self.is_faulty(p),
            "process {p} already has a scheduled crash"
        );
        self.crashes.push((p, at));
        self
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[(ProcessId, Time)] {
        &self.crashes
    }

    /// Whether `p` is scheduled to crash at some point.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.crashes.iter().any(|&(q, _)| q == p)
    }

    /// Number of faulty processes.
    pub fn fault_count(&self) -> usize {
        self.crashes.len()
    }
}

/// A complete fault plan for a run. Currently crash-only (the paper's model
/// has no Byzantine or recovery behaviour); message drops are configured on
/// the world directly because they need access to the message type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled crashes.
    pub crashes: CrashSchedule,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given crash schedule.
    pub fn with_crashes(crashes: CrashSchedule) -> Self {
        FaultPlan { crashes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_types::Duration;

    #[test]
    fn schedule_tracks_faulty_processes() {
        let s = CrashSchedule::new()
            .crash(ProcessId::new(1), Time::ZERO + Duration::from_secs(1))
            .crash(ProcessId::new(3), Time::ZERO + Duration::from_secs(2));
        assert_eq!(s.fault_count(), 2);
        assert!(s.is_faulty(ProcessId::new(1)));
        assert!(s.is_faulty(ProcessId::new(3)));
        assert!(!s.is_faulty(ProcessId::new(0)));
    }

    #[test]
    #[should_panic(expected = "already has a scheduled crash")]
    fn double_crash_panics() {
        let _ = CrashSchedule::new()
            .crash(ProcessId::new(0), Time::ZERO)
            .crash(ProcessId::new(0), Time::ZERO);
    }

    #[test]
    fn default_plan_is_fault_free() {
        assert_eq!(FaultPlan::none().crashes.fault_count(), 0);
    }
}
