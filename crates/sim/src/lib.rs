//! Deterministic discrete-event simulator with a LAN contention model.
//!
//! This crate plays the role of the paper's testbeds: the Neko simulation
//! engine *and* the two physical clusters (Setup 1: Pentium III / 100 Mb/s
//! Ethernet; Setup 2: Pentium 4 / 1 Gb/s Ethernet). Protocol stacks written
//! against `iabc-runtime`'s sans-io [`Node`](iabc_runtime::Node) trait run
//! unchanged under this simulator, the thread runtime, or TCP.
//!
//! # The contention model
//!
//! Every message from `p` to `q` flows through four FIFO resources:
//!
//! ```text
//!  p's CPU ──► p's NIC(tx) ──propagation──► q's NIC(rx) ──► q's CPU ──► on_message
//! ```
//!
//! * CPU stages cost `overhead + per_byte · size` (protocol processing,
//!   serialization — the dominant cost for small messages, exactly what
//!   saturates first in the paper's 1-byte experiments).
//! * NIC stages cost `(size + frame_overhead) / bandwidth` (what saturates
//!   first when consensus ships full payloads around — Figure 1).
//! * Self-sends skip the NICs and pay only a small loop-back delay.
//!
//! Queueing at these resources is what produces the paper's latency-vs-load
//! curves; nothing about the *shape* of those curves is hard-coded.
//!
//! # Determinism
//!
//! Events are ordered by `(time, sequence-number)`, where sequence numbers
//! are assigned at scheduling time. Two runs with the same nodes, fault plan
//! and command schedule produce bit-identical traces. There are no clocks,
//! no threads and no ambient randomness anywhere in this crate.
//!
//! # Example
//!
//! ```
//! use iabc_runtime::{Context, Node};
//! use iabc_sim::{NetworkParams, SimBuilder};
//! use iabc_types::{ProcessId, WireSize};
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl WireSize for Hello {
//!     fn wire_size(&self) -> usize { 1 }
//! }
//!
//! /// Every process greets every other process once, and reports greetings.
//! struct Greeter;
//! impl Node for Greeter {
//!     type Msg = Hello;
//!     type Command = ();
//!     type Output = ProcessId;
//!     fn on_start(&mut self, ctx: &mut Context<Hello, ProcessId>) {
//!         ctx.send_to_others(Hello);
//!     }
//!     fn on_message(&mut self, from: ProcessId, _m: Hello, ctx: &mut Context<Hello, ProcessId>) {
//!         ctx.output(from);
//!     }
//! }
//!
//! let mut world = SimBuilder::new(3, NetworkParams::setup1())
//!     .build(|_p| Greeter);
//! world.run_to_quiescence();
//! assert_eq!(world.outputs().len(), 6); // 3 processes × 2 greetings
//! ```

pub mod faults;
pub mod network;
pub mod queue;
pub mod resource;
pub mod world;

pub use faults::{CrashSchedule, FaultPlan, FaultTraceEntry, LinkFault, LinkFaults};
pub use network::NetworkParams;
pub use world::{OutputRecord, SimBuilder, SimWorld, StopReason};
