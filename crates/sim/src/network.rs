//! The LAN model and its calibrated presets.

use iabc_types::Duration;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated LAN and hosts.
///
/// Two presets mirror the paper's clusters: [`NetworkParams::setup1`]
/// (Pentium III 766 MHz, 100 Base-TX Ethernet — Figures 1, 3, 4) and
/// [`NetworkParams::setup2`] (Pentium 4 3.2 GHz, Gigabit Ethernet —
/// Figures 5, 6, 7). The constants are calibrated so that baseline
/// latencies and saturation points land in the same range the paper
/// reports; the *shapes* of all curves are emergent from queueing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Link bandwidth in bytes/second (100 Mb/s ⇒ 12.5 MB/s).
    pub bandwidth_bytes_per_sec: u64,
    /// Per-frame header bytes added on the wire (Ethernet + IP + UDP).
    pub frame_overhead_bytes: usize,
    /// Propagation + switch latency per hop.
    pub propagation: Duration,
    /// Fixed CPU cost to send one message (syscall, protocol processing).
    pub send_cpu_overhead: Duration,
    /// Additional CPU cost per payload byte sent, in **picoseconds**.
    pub send_cpu_per_byte_ps: u64,
    /// Fixed CPU cost to receive one message.
    pub recv_cpu_overhead: Duration,
    /// Additional CPU cost per payload byte received, in **picoseconds**.
    pub recv_cpu_per_byte_ps: u64,
    /// CPU cost of a self-send (enqueue on a local queue).
    pub local_send_cpu: Duration,
    /// CPU cost of a self-receive.
    pub local_recv_cpu: Duration,
    /// Latency of the loop-back path (self-sends bypass the NIC).
    pub loopback_delay: Duration,
}

impl NetworkParams {
    /// The paper's **Setup 1**: Pentium III 766 MHz, 128 MB RAM,
    /// 100 Base-TX Ethernet, JDK 1.4.
    ///
    /// CPU costs are high (old CPU, Java serialization); bandwidth is
    /// 12.5 MB/s, so kilobyte payloads cost ~100 µs of wire time each.
    pub fn setup1() -> Self {
        NetworkParams {
            bandwidth_bytes_per_sec: 12_500_000,
            frame_overhead_bytes: 58,
            propagation: Duration::from_micros(45),
            send_cpu_overhead: Duration::from_micros(100),
            send_cpu_per_byte_ps: 30_000, // 30 ns/byte (JDK 1.4 serialization)
            recv_cpu_overhead: Duration::from_micros(110),
            recv_cpu_per_byte_ps: 30_000,
            local_send_cpu: Duration::from_micros(4),
            local_recv_cpu: Duration::from_micros(4),
            loopback_delay: Duration::from_micros(2),
        }
    }

    /// The paper's **Setup 2**: Pentium 4 3.2 GHz, 1 GB RAM, Gigabit
    /// Ethernet, JDK 1.5.
    pub fn setup2() -> Self {
        NetworkParams {
            bandwidth_bytes_per_sec: 125_000_000,
            frame_overhead_bytes: 58,
            propagation: Duration::from_micros(28),
            send_cpu_overhead: Duration::from_micros(60),
            send_cpu_per_byte_ps: 8_000, // 8 ns/byte (JDK 1.5 serialization)
            recv_cpu_overhead: Duration::from_micros(70),
            recv_cpu_per_byte_ps: 8_000,
            local_send_cpu: Duration::from_micros(1),
            local_recv_cpu: Duration::from_micros(1),
            loopback_delay: Duration::from_micros(1),
        }
    }

    /// An idealized instantaneous network (zero cost everywhere) — useful
    /// for pure-protocol unit tests where timing is irrelevant.
    pub fn instant() -> Self {
        NetworkParams {
            bandwidth_bytes_per_sec: u64::MAX,
            frame_overhead_bytes: 0,
            propagation: Duration::from_nanos(1),
            send_cpu_overhead: Duration::ZERO,
            send_cpu_per_byte_ps: 0,
            recv_cpu_overhead: Duration::ZERO,
            recv_cpu_per_byte_ps: 0,
            local_send_cpu: Duration::ZERO,
            local_recv_cpu: Duration::ZERO,
            loopback_delay: Duration::from_nanos(1),
        }
    }

    /// Wire transmission time of a message with `bytes` of payload
    /// (headers added): `(bytes + frame_overhead) / bandwidth`.
    pub fn tx_time(&self, bytes: usize) -> Duration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return Duration::ZERO;
        }
        let wire_bytes = (bytes + self.frame_overhead_bytes) as u64;
        // ns = bytes * 1e9 / bw  (u128 to avoid overflow)
        let ns = (wire_bytes as u128 * 1_000_000_000) / self.bandwidth_bytes_per_sec as u128;
        Duration::from_nanos(ns as u64)
    }

    /// CPU time to send a `bytes`-byte message to a remote process.
    pub fn send_cpu(&self, bytes: usize) -> Duration {
        self.send_cpu_overhead + per_byte(self.send_cpu_per_byte_ps, bytes)
    }

    /// CPU time to receive a `bytes`-byte message from a remote process.
    pub fn recv_cpu(&self, bytes: usize) -> Duration {
        self.recv_cpu_overhead + per_byte(self.recv_cpu_per_byte_ps, bytes)
    }
}

/// `bytes × picos_per_byte`, rounded up to a nanosecond.
fn per_byte(picos_per_byte: u64, bytes: usize) -> Duration {
    Duration::from_nanos((bytes as u64 * picos_per_byte).div_ceil(1000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_scales_with_size() {
        let p = NetworkParams::setup1();
        // 1192 bytes payload + 58 header = 1250 bytes = 100 µs at 12.5 MB/s.
        assert_eq!(p.tx_time(1192), Duration::from_micros(100));
        assert!(p.tx_time(5000) > p.tx_time(100));
    }

    #[test]
    fn setup2_is_faster_than_setup1() {
        let s1 = NetworkParams::setup1();
        let s2 = NetworkParams::setup2();
        assert!(s2.tx_time(1000) < s1.tx_time(1000));
        assert!(s2.send_cpu(1000) < s1.send_cpu(1000));
        assert!(s2.recv_cpu(1000) < s1.recv_cpu(1000));
    }

    #[test]
    fn cpu_costs_include_per_byte_component() {
        let p = NetworkParams::setup1();
        let small = p.send_cpu(1);
        let big = p.send_cpu(4096);
        assert!(big > small);
        // 4096 bytes at 30 ns/byte ≈ 123 µs on top of the fixed overhead.
        let extra = big - small;
        assert!(extra >= Duration::from_micros(115) && extra <= Duration::from_micros(130));
    }

    #[test]
    fn instant_network_is_free() {
        let p = NetworkParams::instant();
        assert_eq!(p.tx_time(1 << 20), Duration::ZERO);
        assert_eq!(p.send_cpu(1 << 20), Duration::ZERO);
        assert_eq!(p.recv_cpu(1 << 20), Duration::ZERO);
    }

    #[test]
    fn per_byte_rounds_up() {
        assert_eq!(per_byte(1, 1), Duration::from_nanos(1)); // 1 ps rounds up to 1 ns
        assert_eq!(per_byte(1000, 3), Duration::from_nanos(3));
        assert_eq!(per_byte(0, 12345), Duration::ZERO);
    }
}
