//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use iabc_types::Time;

/// A pending entry in the event queue.
struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// making simulation runs reproducible regardless of hash seeds or
/// allocation order.
///
/// # Example
///
/// ```
/// use iabc_sim::queue::EventQueue;
/// use iabc_types::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_nanos(10), "b");
/// q.push(Time::from_nanos(5), "a");
/// q.push(Time::from_nanos(10), "c");
/// assert_eq!(q.pop().unwrap(), (Time::from_nanos(5), "a"));
/// assert_eq!(q.pop().unwrap(), (Time::from_nanos(10), "b"));
/// assert_eq!(q.pop().unwrap(), (Time::from_nanos(10), "c"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(Time::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_nanos(3), ());
        q.push(Time::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(1)));
        assert_eq!(q.scheduled_total(), 2);
    }
}
