//! FIFO resource servers: the building block of the contention model.

use iabc_types::{Duration, Time};

/// A single-server FIFO queue (a CPU, a NIC transmit port, a NIC receive
/// port).
///
/// Jobs are submitted with [`FifoResource::acquire`], which returns the time
/// at which the job completes given everything previously queued. Because
/// the simulator submits jobs in nondecreasing time order, this models an
/// exact FIFO queue without storing the jobs themselves.
///
/// The server keeps aggregate statistics (busy time, job count) from which
/// experiment harnesses compute utilization and detect saturation.
///
/// # Example
///
/// ```
/// use iabc_sim::resource::FifoResource;
/// use iabc_types::{Duration, Time};
///
/// let mut cpu = FifoResource::new();
/// let d = Duration::from_micros(10);
/// let t0 = Time::ZERO;
/// assert_eq!(cpu.acquire(t0, d), t0 + d);          // idle: starts at once
/// assert_eq!(cpu.acquire(t0, d), t0 + d + d);      // queued behind job 1
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    busy_until: Time,
    busy_total: Duration,
    jobs: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Submits a job of length `dur` at time `now`; returns its completion
    /// time. The job starts at `max(now, end of previous job)`.
    pub fn acquire(&mut self, now: Time, dur: Duration) -> Time {
        let start = now.max(self.busy_until);
        let done = start + dur;
        self.busy_until = done;
        self.busy_total += dur;
        self.jobs += 1;
        done
    }

    /// The instant the resource becomes idle (given jobs so far).
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Current backlog relative to `now`: how long a zero-length job
    /// submitted now would wait.
    pub fn backlog(&self, now: Time) -> Duration {
        if self.busy_until > now {
            self.busy_until.elapsed_since(now)
        } else {
            Duration::ZERO
        }
    }

    /// Total busy time accumulated over the run.
    pub fn busy_total(&self) -> Duration {
        self.busy_total
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the interval `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: Time) -> f64 {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        self.busy_total.as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        let t = Time::from_nanos(100);
        assert_eq!(r.acquire(t, us(5)), t + us(5));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut r = FifoResource::new();
        let t = Time::ZERO;
        let c1 = r.acquire(t, us(10));
        let c2 = r.acquire(t, us(10));
        let c3 = r.acquire(c2, us(10)); // arrives exactly when idle
        assert_eq!(c1, t + us(10));
        assert_eq!(c2, t + us(20));
        assert_eq!(c3, t + us(30));
    }

    #[test]
    fn late_arrival_to_idle_resource_starts_at_arrival() {
        let mut r = FifoResource::new();
        r.acquire(Time::ZERO, us(1));
        let t = Time::ZERO + us(100);
        assert_eq!(r.acquire(t, us(2)), t + us(2));
    }

    #[test]
    fn backlog_reports_waiting_time() {
        let mut r = FifoResource::new();
        r.acquire(Time::ZERO, us(50));
        assert_eq!(r.backlog(Time::ZERO + us(20)), us(30));
        assert_eq!(r.backlog(Time::ZERO + us(60)), Duration::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = FifoResource::new();
        r.acquire(Time::ZERO, us(10));
        r.acquire(Time::ZERO, us(30));
        assert_eq!(r.busy_total(), us(40));
        assert_eq!(r.jobs(), 2);
        let horizon = Time::ZERO + us(80);
        assert!((r.utilization(horizon) - 0.5).abs() < 1e-9);
    }
}
