//! Resource servers: the building blocks of the contention model.
//!
//! [`FifoResource`] is the paper's single-class FIFO server (a CPU, a NIC
//! port). [`ClassedResource`] is the same server with a two-class priority
//! discipline — [`TrafficClass::Ordering`] jobs are served ahead of queued
//! [`TrafficClass::Bulk`] jobs — which models a host whose receive path
//! gives consensus frames their own lane instead of queueing them behind
//! the payload flood.

use std::collections::VecDeque;

use iabc_types::{Duration, Ewma, Time, TrafficClass};

/// A single-server FIFO queue (a CPU, a NIC transmit port, a NIC receive
/// port).
///
/// Jobs are submitted with [`FifoResource::acquire`], which returns the time
/// at which the job completes given everything previously queued. Because
/// the simulator submits jobs in nondecreasing time order, this models an
/// exact FIFO queue without storing the jobs themselves.
///
/// The server keeps aggregate statistics (busy time, job count) from which
/// experiment harnesses compute utilization and detect saturation.
///
/// # Example
///
/// ```
/// use iabc_sim::resource::FifoResource;
/// use iabc_types::{Duration, Time};
///
/// let mut cpu = FifoResource::new();
/// let d = Duration::from_micros(10);
/// let t0 = Time::ZERO;
/// assert_eq!(cpu.acquire(t0, d), t0 + d);          // idle: starts at once
/// assert_eq!(cpu.acquire(t0, d), t0 + d + d);      // queued behind job 1
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    busy_until: Time,
    busy_total: Duration,
    jobs: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        FifoResource::default()
    }

    /// Submits a job of length `dur` at time `now`; returns its completion
    /// time. The job starts at `max(now, end of previous job)`.
    pub fn acquire(&mut self, now: Time, dur: Duration) -> Time {
        let start = now.max(self.busy_until);
        let done = start + dur;
        self.busy_until = done;
        self.busy_total += dur;
        self.jobs += 1;
        done
    }

    /// The instant the resource becomes idle (given jobs so far).
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Current backlog relative to `now`: how long a zero-length job
    /// submitted now would wait.
    pub fn backlog(&self, now: Time) -> Duration {
        if self.busy_until > now {
            self.busy_until.elapsed_since(now)
        } else {
            Duration::ZERO
        }
    }

    /// Total busy time accumulated over the run.
    pub fn busy_total(&self) -> Duration {
        self.busy_total
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the interval `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: Time) -> f64 {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        self.busy_total.as_secs_f64() / horizon.as_secs_f64()
    }
}

/// How far the ordering lane's *contended service time* may run ahead of
/// bulk's before a [`ClassedResource`] serves a waiting bulk job.
///
/// The lane's latency win comes from service *order* (an ordering frame
/// jumps the queued payload flood); its danger is service *share* — under
/// overload the ordering path generates its own work (rcv checks over
/// growing proposals, round churn while payloads lag), and pure strict
/// priority lets that feedback loop starve payload dissemination entirely,
/// after which nothing can be a-delivered. The deficit rule bounds the
/// loop: while both classes contend, ordering may consume at most this
/// much service time beyond parity, then one bulk job runs and pays the
/// debt down. Saturated, the classes converge to an equal time share;
/// uncontended, ordering keeps full priority.
pub const ORDERING_ADVANTAGE: Duration = Duration::from_micros(1000);

/// The adaptive deficit bound, in *bulk service quanta*: with
/// [`ClassedResource::with_adaptive_advantage`], the ordering lane may run
/// this many measured mean bulk service times ahead of parity before a
/// queued bulk job is served.
///
/// The static [`ORDERING_ADVANTAGE`] of 1 ms was tuned for the Setup-1
/// cost model, where a payload frame costs a few hundred microseconds of
/// host service — about four quanta. Expressing the bound in quanta keeps
/// that tuned *ratio* when the cost model changes: an advantage fixed in
/// milliseconds starves bulk on hosts with cheap frames (hundreds of
/// frames overtaken per burst) and loses the lane's latency win on hosts
/// with expensive ones (less than one frame overtaken).
pub const ADVANTAGE_BULK_QUANTA: f64 = 4.0;

/// Smoothing factor of the bulk service-quantum EWMA (weight of the
/// newest observation).
pub const ADVANTAGE_EWMA_ALPHA: f64 = 0.1;

/// Bulk jobs observed before the adaptive advantage trusts its EWMA;
/// until then the static [`ORDERING_ADVANTAGE`] applies.
pub const ADVANTAGE_WARMUP: u64 = 8;

/// A single-server queue with two service classes: priority of
/// [`TrafficClass::Ordering`] over [`TrafficClass::Bulk`] in *order*,
/// bounded to an (approximately equal) *time share* by a deficit rule —
/// see [`ORDERING_ADVANTAGE`] — so neither class can starve the other.
///
/// Unlike [`FifoResource`] — which can compute a job's completion time at
/// submission because FIFO order is fixed — a priority server must *hold*
/// queued jobs: a later-arriving ordering job overtakes bulk work that has
/// not started yet. The resource therefore stores each queued job's service
/// demand together with an opaque payload `J` (the simulator's deferred
/// completion event) and hands jobs back one at a time:
///
/// * [`ClassedResource::try_start`] — submit a job; returns its completion
///   time if the server is idle (the job runs immediately), else `None`
///   (the caller must [`ClassedResource::enqueue`] it).
/// * [`ClassedResource::pop_next`] — called when the server frees up;
///   dequeues the next job under the priority discipline and returns its
///   completion time and payload.
///
/// Service is non-preemptive: a bulk job in service finishes before an
/// ordering arrival is considered. Everything is deterministic — identical
/// submission sequences produce identical completion times.
#[derive(Debug, Clone)]
pub struct ClassedResource<J> {
    busy_until: Time,
    /// Pending jobs per class, FIFO within a class (index by
    /// [`TrafficClass::index`]).
    queues: [VecDeque<(Duration, J)>; 2],
    /// Total queued service demand per class (for backlog accounting).
    queued_demand: [Duration; 2],
    busy_total: [Duration; 2],
    jobs: [u64; 2],
    /// Ordering service time consumed while bulk waited, net of the bulk
    /// service that has paid it down — the deficit counter.
    ordering_debt: Duration,
    ordering_advantage: Duration,
    /// Whether the deficit bound is derived from the measured bulk service
    /// quantum instead of the static `ordering_advantage` — see
    /// [`ClassedResource::with_adaptive_advantage`].
    adaptive_advantage: bool,
    /// EWMA of bulk job service times, seconds (adaptive mode).
    bulk_quantum: Ewma,
}

impl<J> Default for ClassedResource<J> {
    fn default() -> Self {
        ClassedResource::new()
    }
}

impl<J> ClassedResource<J> {
    /// Creates an idle two-class resource with the default
    /// [`ORDERING_ADVANTAGE`] deficit bound.
    pub fn new() -> Self {
        ClassedResource::with_ordering_advantage(ORDERING_ADVANTAGE)
    }

    /// Creates an idle resource whose ordering lane may run `advantage` of
    /// contended service time ahead of bulk before a bulk job is served.
    pub fn with_ordering_advantage(advantage: Duration) -> Self {
        ClassedResource {
            busy_until: Time::ZERO,
            queues: [VecDeque::new(), VecDeque::new()],
            queued_demand: [Duration::ZERO; 2],
            busy_total: [Duration::ZERO; 2],
            jobs: [0; 2],
            ordering_debt: Duration::ZERO,
            ordering_advantage: advantage,
            adaptive_advantage: false,
            bulk_quantum: Ewma::new(ADVANTAGE_EWMA_ALPHA),
        }
    }

    /// Creates an idle resource whose deficit bound *adapts to the cost
    /// model*: [`ADVANTAGE_BULK_QUANTA`] × the EWMA of measured bulk job
    /// service times, so the lane's latency win (ordering may overtake a
    /// few queued payload frames, never hundreds) holds whether a frame
    /// costs 50 µs or 5 ms to serve. Until [`ADVANTAGE_WARMUP`] bulk jobs
    /// were observed the static [`ORDERING_ADVANTAGE`] applies.
    pub fn with_adaptive_advantage() -> Self {
        ClassedResource { adaptive_advantage: true, ..ClassedResource::new() }
    }

    /// The deficit bound currently in force.
    pub fn current_advantage(&self) -> Duration {
        if self.adaptive_advantage && self.bulk_quantum.warmed(ADVANTAGE_WARMUP) {
            Duration::from_secs_f64(ADVANTAGE_BULK_QUANTA * self.bulk_quantum.value())
        } else {
            self.ordering_advantage
        }
    }

    /// Folds a started bulk job's service time into the quantum EWMA.
    fn note_bulk_quantum(&mut self, dur: Duration) {
        if self.adaptive_advantage {
            self.bulk_quantum.observe(dur.as_secs_f64());
        }
    }

    /// Whether the server is idle at `now` with nothing queued.
    pub fn is_idle(&self, now: Time) -> bool {
        now >= self.busy_until && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Submits a job of class `class` and length `dur` at time `now`. If
    /// the server can start it immediately (idle, nothing queued) the job
    /// is accepted and its completion time returned; otherwise `None` —
    /// the caller must hand the job to [`ClassedResource::enqueue`].
    pub fn try_start(&mut self, now: Time, class: TrafficClass, dur: Duration) -> Option<Time> {
        if !self.is_idle(now) {
            return None;
        }
        let done = now + dur;
        self.busy_until = done;
        self.busy_total[class.index()] += dur;
        self.jobs[class.index()] += 1;
        if class == TrafficClass::Bulk {
            self.note_bulk_quantum(dur);
        }
        // Nothing was waiting: no contention, the debt is irrelevant here.
        Some(done)
    }

    /// Queues a job behind the work already held. FIFO within its class.
    pub fn enqueue(&mut self, class: TrafficClass, dur: Duration, job: J) {
        self.queued_demand[class.index()] += dur;
        self.queues[class.index()].push_back((dur, job));
    }

    /// Dequeues and starts the next job at `now` (the caller invokes this
    /// exactly when the server frees up). Returns the job's completion
    /// time and payload, or `None` if nothing is queued.
    ///
    /// Discipline: ordering first while its contended-service debt is
    /// within the advantage; past it, one bulk job runs and pays the debt
    /// down. Debt only moves while *both* classes have queued work —
    /// uncontended priority is free.
    pub fn pop_next(&mut self, now: Time) -> Option<(Time, J)> {
        let o = TrafficClass::Ordering.index();
        let b = TrafficClass::Bulk.index();
        let contended = !self.queues[o].is_empty() && !self.queues[b].is_empty();
        let class = if self.queues[o].is_empty() {
            TrafficClass::Bulk
        } else if self.queues[b].is_empty() || self.ordering_debt <= self.current_advantage() {
            TrafficClass::Ordering
        } else {
            TrafficClass::Bulk
        };
        let (dur, job) = self.queues[class.index()].pop_front()?;
        if class == TrafficClass::Bulk {
            self.note_bulk_quantum(dur);
        }
        self.queued_demand[class.index()] -= dur;
        if contended {
            match class {
                TrafficClass::Ordering => self.ordering_debt += dur,
                TrafficClass::Bulk => {
                    self.ordering_debt = self.ordering_debt.saturating_sub(dur);
                }
            }
        }
        let start = now.max(self.busy_until);
        let done = start + dur;
        self.busy_until = done;
        self.busy_total[class.index()] += dur;
        self.jobs[class.index()] += 1;
        Some((done, job))
    }

    /// The instant the in-service job finishes (queued work excluded).
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Queued service demand of one class (in-service job excluded).
    pub fn queued_demand(&self, class: TrafficClass) -> Duration {
        self.queued_demand[class.index()]
    }

    /// Number of queued jobs of one class.
    pub fn queue_len(&self, class: TrafficClass) -> usize {
        self.queues[class.index()].len()
    }

    /// Backlog a new job of `class` would see at `now`: residual service
    /// time plus the queued demand of every class that would be served
    /// before it (its own queue always; for bulk, the ordering queue too).
    ///
    /// For ordering jobs this is the lane's whole point: the bulk queue
    /// does not appear in the bound (up to the one-job non-preemption
    /// residual and the burst discipline).
    pub fn backlog(&self, now: Time, class: TrafficClass) -> Duration {
        let residual = if self.busy_until > now {
            self.busy_until.elapsed_since(now)
        } else {
            Duration::ZERO
        };
        let mut ahead = self.queued_demand[class.index()];
        if class == TrafficClass::Bulk {
            ahead += self.queued_demand[TrafficClass::Ordering.index()];
        }
        residual + ahead
    }

    /// Total busy time accumulated for one class.
    pub fn busy_total(&self, class: TrafficClass) -> Duration {
        self.busy_total[class.index()]
    }

    /// Jobs served (started) for one class.
    pub fn jobs(&self, class: TrafficClass) -> u64 {
        self.jobs[class.index()]
    }

    /// Utilization of the server by one class over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: Time, class: TrafficClass) -> f64 {
        assert!(horizon > Time::ZERO, "horizon must be positive");
        self.busy_total[class.index()].as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        let t = Time::from_nanos(100);
        assert_eq!(r.acquire(t, us(5)), t + us(5));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut r = FifoResource::new();
        let t = Time::ZERO;
        let c1 = r.acquire(t, us(10));
        let c2 = r.acquire(t, us(10));
        let c3 = r.acquire(c2, us(10)); // arrives exactly when idle
        assert_eq!(c1, t + us(10));
        assert_eq!(c2, t + us(20));
        assert_eq!(c3, t + us(30));
    }

    #[test]
    fn late_arrival_to_idle_resource_starts_at_arrival() {
        let mut r = FifoResource::new();
        r.acquire(Time::ZERO, us(1));
        let t = Time::ZERO + us(100);
        assert_eq!(r.acquire(t, us(2)), t + us(2));
    }

    #[test]
    fn backlog_reports_waiting_time() {
        let mut r = FifoResource::new();
        r.acquire(Time::ZERO, us(50));
        assert_eq!(r.backlog(Time::ZERO + us(20)), us(30));
        assert_eq!(r.backlog(Time::ZERO + us(60)), Duration::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = FifoResource::new();
        r.acquire(Time::ZERO, us(10));
        r.acquire(Time::ZERO, us(30));
        assert_eq!(r.busy_total(), us(40));
        assert_eq!(r.jobs(), 2);
        let horizon = Time::ZERO + us(80);
        assert!((r.utilization(horizon) - 0.5).abs() < 1e-9);
    }

    // ---- ClassedResource ----

    const ORD: TrafficClass = TrafficClass::Ordering;
    const BLK: TrafficClass = TrafficClass::Bulk;

    /// Drives a ClassedResource like the simulator does: submit everything
    /// at its arrival time (jobs are pre-sorted by time), then serve the
    /// queue to completion. Returns `(label, completion)` per job.
    fn serve_all(
        r: &mut ClassedResource<&'static str>,
        jobs: &[(u64, TrafficClass, u64, &'static str)], // (arrival µs, class, dur µs, label)
    ) -> Vec<(&'static str, Time)> {
        let mut done = Vec::new();
        for &(at, class, dur, label) in jobs {
            let now = Time::ZERO + us(at);
            // Serve everything that completes before this arrival.
            while !r.is_idle(now) && r.busy_until() <= now {
                match r.pop_next(r.busy_until()) {
                    Some((t, l)) => done.push((l, t)),
                    None => break,
                }
            }
            match r.try_start(now, class, us(dur)) {
                Some(t) => done.push((label, t)),
                None => r.enqueue(class, us(dur), label),
            }
        }
        while let Some((t, l)) = {
            let t = r.busy_until();
            r.pop_next(t)
        } {
            done.push((l, t));
        }
        done
    }

    #[test]
    fn ordering_overtakes_queued_bulk() {
        let mut r = ClassedResource::new();
        // One bulk job in service, one queued; an ordering job arrives last
        // and must run before the *queued* bulk job (non-preemptive: the
        // in-service one finishes first).
        let done = serve_all(
            &mut r,
            &[(0, BLK, 100, "b1"), (1, BLK, 100, "b2"), (2, ORD, 10, "o1")],
        );
        let at = |l: &str| done.iter().find(|(x, _)| *x == l).unwrap().1;
        assert_eq!(at("b1"), Time::ZERO + us(100));
        assert_eq!(at("o1"), Time::ZERO + us(110), "ordering must jump the bulk queue");
        assert_eq!(at("b2"), Time::ZERO + us(210));
    }

    #[test]
    fn fifo_within_a_class() {
        let mut r = ClassedResource::new();
        let done = serve_all(
            &mut r,
            &[(0, BLK, 10, "b1"), (1, ORD, 5, "o1"), (2, ORD, 5, "o2"), (3, BLK, 10, "b2")],
        );
        let order: Vec<&str> = done.iter().map(|(l, _)| *l).collect();
        assert_eq!(order, vec!["b1", "o1", "o2", "b2"]);
    }

    #[test]
    fn bulk_starvation_is_bounded_under_sustained_ordering_load() {
        // A bulk job queued behind a sustained ordering flood must start
        // once the ordering lane has consumed ORDERING_ADVANTAGE of
        // contended service — not after the whole flood.
        let mut r: ClassedResource<&'static str> = ClassedResource::new();
        assert!(r.try_start(Time::ZERO, ORD, us(10)).is_some());
        r.enqueue(BLK, us(10), "bulk");
        for _ in 0..10_000 {
            r.enqueue(ORD, us(10), "ord");
        }
        let mut ordering_before_bulk = Duration::ZERO;
        loop {
            let t = r.busy_until();
            let (_, label) = r.pop_next(t).expect("queue not empty");
            if label == "bulk" {
                break;
            }
            ordering_before_bulk += us(10);
            assert!(
                ordering_before_bulk <= ORDERING_ADVANTAGE + us(10),
                "bulk starved past the deficit bound: {ordering_before_bulk}"
            );
        }
        assert_eq!(ordering_before_bulk, ORDERING_ADVANTAGE + us(10));
        // And under sustained contention the shares converge to ~1:1
        // (measured over the steady tail, past the initial advantage).
        let (ord0, blk0) = (r.busy_total(ORD), r.busy_total(BLK));
        r.enqueue(BLK, us(10), "bulk");
        for _ in 0..200 {
            let t = r.busy_until();
            r.pop_next(t).unwrap();
            if r.queue_len(BLK) == 0 {
                r.enqueue(BLK, us(10), "bulk");
            }
        }
        let ord = (r.busy_total(ORD) - ord0).as_secs_f64();
        let blk = (r.busy_total(BLK) - blk0).as_secs_f64();
        let share = ord / (ord + blk);
        assert!(
            (0.35..=0.65).contains(&share),
            "contended shares must stay near parity, ordering got {share:.2}"
        );
    }

    #[test]
    fn uncontended_ordering_accrues_no_debt() {
        // Ordering served while the bulk queue is empty must not pay
        // later: priority is free when nobody waits.
        let mut r: ClassedResource<u32> = ClassedResource::with_ordering_advantage(us(20));
        assert!(r.try_start(Time::ZERO, ORD, us(10)).is_some());
        for i in 0..10 {
            r.enqueue(ORD, us(10), i);
        }
        for _ in 0..10 {
            let t = r.busy_until();
            r.pop_next(t).unwrap();
        }
        // 100 µs of uncontended ordering served; a fresh contention round
        // still grants ordering its full advantage before bulk runs.
        r.enqueue(BLK, us(10), 100);
        r.enqueue(ORD, us(10), 200);
        r.enqueue(ORD, us(10), 201);
        r.enqueue(ORD, us(10), 202);
        let mut order = Vec::new();
        while let Some((_, j)) = {
            let t = r.busy_until();
            r.pop_next(t)
        } {
            order.push(j);
        }
        // Debt reaches 30 µs (> 20 µs advantage) after three contended
        // ordering jobs, then bulk runs.
        assert_eq!(order, vec![200, 201, 202, 100]);
    }

    /// Serves a sustained ordering flood against one queued bulk job and
    /// returns how much ordering service ran before the bulk job started.
    fn ordering_served_before_bulk(r: &mut ClassedResource<&'static str>, job_us: u64) -> Duration {
        r.enqueue(BLK, us(job_us), "bulk");
        for _ in 0..10_000 {
            r.enqueue(ORD, us(job_us), "ord");
        }
        let mut served = Duration::ZERO;
        loop {
            let t = r.busy_until();
            let (_, label) = r.pop_next(t).expect("queue not empty");
            if label == "bulk" {
                return served;
            }
            served += us(job_us);
        }
    }

    #[test]
    fn adaptive_advantage_tracks_the_bulk_service_quantum() {
        let mut r: ClassedResource<&'static str> = ClassedResource::with_adaptive_advantage();
        // Cold: the static default applies.
        assert_eq!(r.current_advantage(), ORDERING_ADVANTAGE);
        // Warm it with bulk jobs of a fixed 100 µs quantum.
        assert!(r.try_start(Time::ZERO, BLK, us(100)).is_some());
        for _ in 0..ADVANTAGE_WARMUP {
            r.enqueue(BLK, us(100), "b");
        }
        while r.pop_next(r.busy_until()).is_some() {}
        let adv = r.current_advantage();
        assert!(
            adv.as_nanos().abs_diff(us(400).as_nanos()) <= 1_000,
            "advantage must converge to {ADVANTAGE_BULK_QUANTA}x the quantum, got {adv}"
        );
    }

    #[test]
    fn adaptive_advantage_keeps_the_starvation_ratio_across_cost_models() {
        // The lane's tuned behaviour: a contended ordering burst may
        // overtake ~ADVANTAGE_BULK_QUANTA bulk jobs (+1 for the deficit
        // crossing), whatever a bulk job costs. The static bound instead
        // lets the ratio swing with the cost model.
        for job_us in [50u64, 500, 5_000] {
            let mut r: ClassedResource<&'static str> = ClassedResource::with_adaptive_advantage();
            // Warm the quantum estimate with uncontended bulk jobs.
            assert!(r.try_start(Time::ZERO, BLK, us(job_us)).is_some());
            for _ in 0..ADVANTAGE_WARMUP {
                r.enqueue(BLK, us(job_us), "warm");
            }
            while r.pop_next(r.busy_until()).is_some() {}
            let served = ordering_served_before_bulk(&mut r, job_us);
            let jobs_overtaken = served.as_nanos() / us(job_us).as_nanos();
            assert_eq!(
                jobs_overtaken,
                ADVANTAGE_BULK_QUANTA as u64 + 1,
                "at {job_us} µs/job the burst overtook {jobs_overtaken} jobs"
            );
        }
        // The static bound, for contrast: 1 ms of advantage is 21 cheap
        // jobs but not even one 5 ms job.
        let mut cheap: ClassedResource<&'static str> = ClassedResource::new();
        assert!(cheap.try_start(Time::ZERO, ORD, us(50)).is_some());
        assert_eq!(ordering_served_before_bulk(&mut cheap, 50), ORDERING_ADVANTAGE + us(50));
        let mut costly: ClassedResource<&'static str> = ClassedResource::new();
        assert!(costly.try_start(Time::ZERO, ORD, us(5_000)).is_some());
        assert_eq!(ordering_served_before_bulk(&mut costly, 5_000), us(5_000));
    }

    #[test]
    fn static_resources_never_adapt_their_advantage() {
        let mut r: ClassedResource<&'static str> = ClassedResource::new();
        assert!(r.try_start(Time::ZERO, BLK, us(9_000)).is_some());
        for _ in 0..100 {
            r.enqueue(BLK, us(9_000), "b");
        }
        while r.pop_next(r.busy_until()).is_some() {}
        assert_eq!(r.current_advantage(), ORDERING_ADVANTAGE);
    }

    #[test]
    fn per_class_accounting_tracks_backlog_and_utilization() {
        let mut r: ClassedResource<()> = ClassedResource::new();
        assert!(r.is_idle(Time::ZERO));
        let done = r.try_start(Time::ZERO, BLK, us(50)).unwrap();
        assert_eq!(done, Time::ZERO + us(50));
        r.enqueue(ORD, us(10), ());
        r.enqueue(BLK, us(20), ());
        assert_eq!(r.queue_len(ORD), 1);
        assert_eq!(r.queue_len(BLK), 1);
        assert_eq!(r.queued_demand(ORD), us(10));
        assert_eq!(r.queued_demand(BLK), us(20));
        // At t=20: 30 µs of bulk service remain.
        let now = Time::ZERO + us(20);
        assert_eq!(r.backlog(now, ORD), us(40), "residual 30 + own queue 10");
        assert_eq!(r.backlog(now, BLK), us(60), "residual 30 + ordering 10 + own 20");
        // Serve out and check busy totals split by class.
        let t = r.busy_until();
        let (t1, ()) = r.pop_next(t).unwrap();
        let (t2, ()) = r.pop_next(t1).unwrap();
        assert_eq!(t2, Time::ZERO + us(80));
        assert_eq!(r.busy_total(ORD), us(10));
        assert_eq!(r.busy_total(BLK), us(70));
        assert_eq!(r.jobs(ORD), 1);
        assert_eq!(r.jobs(BLK), 2);
        let horizon = Time::ZERO + us(100);
        assert!((r.utilization(horizon, ORD) - 0.1).abs() < 1e-9);
        assert!((r.utilization(horizon, BLK) - 0.7).abs() < 1e-9);
        assert_eq!(r.queued_demand(ORD), Duration::ZERO);
        assert_eq!(r.queued_demand(BLK), Duration::ZERO);
    }

    #[test]
    fn identical_submission_sequences_complete_identically() {
        // Determinism: the discipline has no hidden state — two resources
        // fed the same (pseudo-random) submission sequence produce the
        // same completion times in the same order.
        let jobs: Vec<(u64, TrafficClass, u64, &'static str)> = (0..200u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                let class = if h % 3 == 0 { ORD } else { BLK };
                let label: &'static str = if class == ORD { "o" } else { "b" };
                (i * 7, class, 1 + h % 40, label)
            })
            .collect();
        let mut a = ClassedResource::new();
        let mut b = ClassedResource::new();
        let ra = serve_all(&mut a, &jobs);
        let rb = serve_all(&mut b, &jobs);
        assert_eq!(ra, rb);
        assert_eq!(a.busy_total(ORD), b.busy_total(ORD));
        assert_eq!(a.busy_total(BLK), b.busy_total(BLK));
        // Work conservation: one server, classes never overlap.
        assert_eq!(ra.len(), jobs.len());
        let total = a.busy_total(ORD) + a.busy_total(BLK);
        let expected: Duration = jobs.iter().map(|&(_, _, d, _)| us(d)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn try_start_refuses_while_busy_or_backlogged() {
        let mut r: ClassedResource<()> = ClassedResource::new();
        assert!(r.try_start(Time::ZERO, ORD, us(10)).is_some());
        assert!(r.try_start(Time::ZERO + us(5), ORD, us(1)).is_none(), "server busy");
        r.enqueue(ORD, us(1), ());
        assert!(
            r.try_start(Time::ZERO + us(20), ORD, us(1)).is_none(),
            "queued work must drain first even if the server is idle"
        );
        let (done, ()) = r.pop_next(Time::ZERO + us(20)).unwrap();
        assert_eq!(done, Time::ZERO + us(21), "late pop starts at now, not busy_until");
        assert!(r.try_start(done, BLK, us(2)).is_some());
    }
}
