//! The simulation world: nodes, resources, event loop.

use iabc_runtime::{Action, Context, Node, TimerId};
use iabc_types::{Duration, ProcessId, Time, TrafficClass, WireSize};

use crate::faults::{FaultPlan, FaultTraceEntry, LinkFault, LinkFaults};
use crate::network::NetworkParams;
use crate::queue::EventQueue;
use crate::resource::{ClassedResource, FifoResource};

/// Why a `run_*` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events remain — the system is quiescent.
    Quiescent,
    /// The requested time horizon was reached with events still pending.
    TimeLimitReached,
    /// The event budget was exhausted (safety valve against livelock bugs).
    EventLimitReached,
}

/// An application output produced by some process at some time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRecord<O> {
    /// When the output was produced (virtual time).
    pub at: Time,
    /// The producing process.
    pub process: ProcessId,
    /// The output value.
    pub output: O,
}

/// Internal pipeline events. `M` is the node message type, `C` the command
/// type. Message events carry the precomputed wire size so `wire_size()` is
/// evaluated once per send.
enum SimEvent<M, C> {
    Command { p: ProcessId, cmd: C },
    /// Sender CPU finished serializing; message enters the sender NIC.
    SendCpuDone { from: ProcessId, to: ProcessId, bytes: usize, msg: M },
    /// Frame left the sender NIC; starts propagating.
    TxDone { from: ProcessId, to: ProcessId, bytes: usize, msg: M },
    /// Frame reached the receiver NIC port.
    RxArrive { from: ProcessId, to: ProcessId, bytes: usize, msg: M },
    /// Frame fully received; enters receiver CPU.
    RxDone { from: ProcessId, to: ProcessId, bytes: usize, msg: M },
    /// Receiver CPU finished processing; deliver to the node.
    RecvCpuDone { from: ProcessId, to: ProcessId, msg: M },
    /// A self-send arriving through the loop-back path.
    LoopbackArrive { p: ProcessId, msg: M },
    /// Carries the process's timer epoch at arming time: timers armed
    /// before a crash must not fire into the replacement node.
    TimerFired { p: ProcessId, timer: TimerId, epoch: u64 },
    Crash { p: ProcessId },
    /// Swap in the pre-built replacement node and call its `on_start`
    /// (crash-recovery; see [`SimWorld::schedule_restart`]).
    Restart { p: ProcessId },
    /// A classed resource finished its in-service job and may start the
    /// next queued one (priority-lane mode only; see [`HostRes`]).
    ResourceFree { p: ProcessId, kind: ResKind },
}

/// Which of a host's three servers a [`SimEvent::ResourceFree`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResKind {
    Cpu,
    NicTx,
    NicRx,
}

/// A queued job's payload in priority-lane mode: the event to fire when
/// service completes, plus an extra post-service delay (the loop-back path
/// adds `loopback_delay` after the send CPU finishes). `None` models
/// fire-and-forget CPU work ([`Action::Work`]).
type DeferredJob<M, C> = (Duration, Option<SimEvent<M, C>>);

/// One server of a simulated host: the paper's single-class FIFO model, or
/// the two-class priority server of the traffic-lane refactor.
///
/// The FIFO arm computes completion times analytically at submission —
/// exactly the seed behaviour, preserved bit-for-bit (same events pushed in
/// the same order) so the paper-figure bins and the pinned bench baselines
/// are untouched when the lane is off. The classed arm holds queued jobs
/// and re-schedules itself through [`SimEvent::ResourceFree`] events.
enum HostRes<M, C> {
    Fifo(FifoResource),
    Classed(ClassedResource<DeferredJob<M, C>>),
}

impl<M, C> HostRes<M, C> {
    /// Submits a job: in FIFO mode the completion event is pushed at the
    /// analytically computed time; in classed mode the job either starts
    /// now (completion + `ResourceFree` pushed) or waits in its class
    /// queue until a `ResourceFree` pops it.
    #[allow(clippy::too_many_arguments)] // one call site per pipeline stage
    fn submit(
        &mut self,
        queue: &mut EventQueue<SimEvent<M, C>>,
        p: ProcessId,
        kind: ResKind,
        now: Time,
        class: TrafficClass,
        dur: Duration,
        extra_delay: Duration,
        ev: Option<SimEvent<M, C>>,
    ) {
        match self {
            HostRes::Fifo(r) => {
                let done = r.acquire(now, dur);
                if let Some(ev) = ev {
                    queue.push(done + extra_delay, ev);
                }
            }
            HostRes::Classed(r) => {
                if let Some(done) = r.try_start(now, class, dur) {
                    if let Some(ev) = ev {
                        queue.push(done + extra_delay, ev);
                    }
                    queue.push(done, SimEvent::ResourceFree { p, kind });
                } else {
                    r.enqueue(class, dur, (extra_delay, ev));
                }
            }
        }
    }

    /// Handles this server's `ResourceFree`: start the next queued job
    /// under the priority discipline and schedule the next wake-up.
    ///
    /// A `ResourceFree` can be stale: a completion event at the same
    /// instant may have `try_start`ed a fresh job before this fires (the
    /// completion is pushed first, so it runs first). Popping then would
    /// commit a queued job one service slot early — before the in-service
    /// job's own wake-up at `busy_until` — freezing the class choice too
    /// soon, so an ordering frame arriving meanwhile could no longer
    /// overtake it. Stale wake-ups must no-op; every started job schedules
    /// its own `ResourceFree` at its true completion.
    fn on_free(&mut self, queue: &mut EventQueue<SimEvent<M, C>>, p: ProcessId, kind: ResKind, now: Time) {
        if let HostRes::Classed(r) = self {
            if now < r.busy_until() {
                return; // stale: the in-service job's wake-up will pop
            }
            if let Some((done, (extra_delay, ev))) = r.pop_next(now) {
                if let Some(ev) = ev {
                    queue.push(done + extra_delay, ev);
                }
                queue.push(done, SimEvent::ResourceFree { p, kind });
            }
        }
    }
}

/// Predicate deciding whether a message is silently lost
/// (see [`SimWorld::set_drop_filter`]).
pub type DropFilter<M> = Box<dyn FnMut(ProcessId, ProcessId, &M) -> bool>;

/// Aggregate counters of a finished (or paused) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Events processed so far.
    pub events: u64,
    /// `Send` actions accepted from nodes.
    pub messages_sent: u64,
    /// Messages handed to `on_message`.
    pub messages_delivered: u64,
    /// Messages removed by the drop filter.
    pub messages_dropped: u64,
    /// Messages lost because their sender crashed mid-pipeline.
    pub messages_lost_to_crash: u64,
    /// Frames lost to an open partition window (link faults).
    pub frames_partitioned: u64,
    /// Frames dropped by the lossy-link probability (link faults).
    pub frames_fault_dropped: u64,
    /// Frames delivered twice by the duplication probability (link faults).
    pub frames_duplicated: u64,
    /// Frames delivered late (extra delay or reorder hold-back; link faults).
    pub frames_delayed: u64,
    /// Per-process CPU busy time.
    pub cpu_busy: Vec<Duration>,
    /// Per-process NIC transmit busy time.
    pub nic_tx_busy: Vec<Duration>,
    /// Per-process CPU busy time attributable to [`TrafficClass::Ordering`]
    /// messages (consensus/FD frames and protocol bookkeeping).
    pub cpu_ordering_busy: Vec<Duration>,
    /// Per-process CPU busy time attributable to [`TrafficClass::Bulk`]
    /// messages (payload dissemination).
    pub cpu_bulk_busy: Vec<Duration>,
}

/// Builder for [`SimWorld`].
///
/// # Example
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct SimBuilder {
    n: usize,
    params: NetworkParams,
    faults: FaultPlan,
    max_events: u64,
    priority_lane: bool,
    adaptive_advantage: bool,
}

impl SimBuilder {
    /// Starts configuring a world of `n` processes on the given network.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn new(n: usize, params: NetworkParams) -> Self {
        assert!((1..=64).contains(&n), "need 1 ≤ n ≤ 64 processes, got {n}");
        SimBuilder {
            n,
            params,
            faults: FaultPlan::none(),
            max_events: 200_000_000,
            priority_lane: false,
            adaptive_advantage: false,
        }
    }

    /// Installs a fault plan (scheduled crashes).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the event budget after which runs abort with
    /// [`StopReason::EventLimitReached`].
    pub fn max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }

    /// Selects the host model: `false` (default) is the paper's
    /// single-class FIFO servers, bit-for-bit the seed behaviour; `true`
    /// replaces every CPU and NIC port with a two-class
    /// [`ClassedResource`] that serves [`TrafficClass::Ordering`] messages
    /// ahead of queued [`TrafficClass::Bulk`] payloads.
    pub fn priority_lane(mut self, on: bool) -> Self {
        self.priority_lane = on;
        self
    }

    /// Derives each classed server's deficit bound from its measured bulk
    /// service quantum instead of the static
    /// [`crate::resource::ORDERING_ADVANTAGE`] — see
    /// [`ClassedResource::with_adaptive_advantage`]. Only meaningful with
    /// [`SimBuilder::priority_lane`] on; ignored otherwise.
    pub fn adaptive_advantage(mut self, on: bool) -> Self {
        self.adaptive_advantage = on;
        self
    }

    /// Builds the world, creating one node per process with `factory`.
    pub fn build<N, F>(self, mut factory: F) -> SimWorld<N>
    where
        N: Node,
        F: FnMut(ProcessId) -> N,
    {
        let nodes: Vec<N> = ProcessId::all(self.n).map(&mut factory).collect();
        let make_res = || -> Vec<HostRes<N::Msg, N::Command>> {
            (0..self.n)
                .map(|_| {
                    if self.priority_lane && self.adaptive_advantage {
                        HostRes::Classed(ClassedResource::with_adaptive_advantage())
                    } else if self.priority_lane {
                        HostRes::Classed(ClassedResource::new())
                    } else {
                        HostRes::Fifo(FifoResource::new())
                    }
                })
                .collect()
        };
        let mut world = SimWorld {
            n: self.n,
            params: self.params,
            link_faults: self.faults.links.clone(),
            nodes,
            replacements: (0..self.n).map(|_| None).collect(),
            epoch: vec![0; self.n],
            crashed: vec![false; self.n],
            cpu: make_res(),
            nic_tx: make_res(),
            nic_rx: make_res(),
            priority_lane: self.priority_lane,
            queue: EventQueue::new(),
            now: Time::ZERO,
            outputs: Vec::new(),
            drop_filter: None,
            stats: SimStats {
                cpu_busy: vec![Duration::ZERO; self.n],
                nic_tx_busy: vec![Duration::ZERO; self.n],
                cpu_ordering_busy: vec![Duration::ZERO; self.n],
                cpu_bulk_busy: vec![Duration::ZERO; self.n],
                ..SimStats::default()
            },
            max_events: self.max_events,
            started: false,
        };
        for &(p, at) in self.faults.crashes.crashes() {
            world.schedule_crash(p, at);
        }
        // Restarting processes reboot with empty volatile state: the
        // factory runs again, so anything the test wants to survive must
        // live outside the node (e.g. a durable decided log on disk).
        for &(p, at) in self.faults.crashes.restarts() {
            let node = factory(p);
            world.schedule_restart(p, at, node);
        }
        world
    }
}

/// A deterministic simulated execution of `n` copies of a protocol stack.
///
/// Drive it with [`SimWorld::run_to_quiescence`] or [`SimWorld::run_until`];
/// inject application commands with [`SimWorld::schedule_command`]; inspect
/// results via [`SimWorld::outputs`] and [`SimWorld::stats`].
pub struct SimWorld<N: Node> {
    n: usize,
    params: NetworkParams,
    /// Link-fault layer, if the plan configured one. `None` keeps the
    /// `TxDone → RxArrive` edge bit-for-bit the fault-free behaviour.
    link_faults: Option<LinkFaults>,
    nodes: Vec<N>,
    /// Pre-built replacement nodes, consumed by [`SimEvent::Restart`].
    replacements: Vec<Option<N>>,
    /// Per-process timer epoch, bumped at restart: timers armed by the
    /// crashed incarnation must not fire into the replacement node.
    epoch: Vec<u64>,
    crashed: Vec<bool>,
    cpu: Vec<HostRes<N::Msg, N::Command>>,
    nic_tx: Vec<HostRes<N::Msg, N::Command>>,
    nic_rx: Vec<HostRes<N::Msg, N::Command>>,
    priority_lane: bool,
    queue: EventQueue<SimEvent<N::Msg, N::Command>>,
    now: Time,
    outputs: Vec<OutputRecord<N::Output>>,
    drop_filter: Option<DropFilter<N::Msg>>,
    stats: SimStats,
    max_events: u64,
    started: bool,
}

impl<N: Node> SimWorld<N> {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether process `p` has crashed (so far).
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.as_usize()]
    }

    /// Whether hosts run the two-class priority lane (see
    /// [`SimBuilder::priority_lane`]).
    pub fn priority_lane(&self) -> bool {
        self.priority_lane
    }

    /// Read access to a node's protocol state (for tests and probes).
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.as_usize()]
    }

    /// Mutable access to a node's protocol state.
    pub fn node_mut(&mut self, p: ProcessId) -> &mut N {
        &mut self.nodes[p.as_usize()]
    }

    /// All outputs produced so far, in production order.
    pub fn outputs(&self) -> &[OutputRecord<N::Output>] {
        &self.outputs
    }

    /// Removes and returns all outputs produced so far.
    pub fn drain_outputs(&mut self) -> Vec<OutputRecord<N::Output>> {
        std::mem::take(&mut self.outputs)
    }

    /// Run counters and resource utilization.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The injected-fault trace, if the plan's [`LinkFaults`] enabled
    /// [`LinkFaults::record_trace`]. `None` when no link faults are
    /// installed or tracing is off.
    pub fn fault_trace(&self) -> Option<&[FaultTraceEntry]> {
        self.link_faults.as_ref().and_then(|lf| lf.trace())
    }

    /// Schedules an application command for process `p` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_command(&mut self, p: ProcessId, at: Time, cmd: N::Command) {
        assert!(at >= self.now, "cannot schedule a command in the past");
        self.queue.push(at, SimEvent::Command { p, cmd });
    }

    /// Schedules a crash of process `p` at time `at`.
    ///
    /// From `at` on, `p` processes no events; messages still queued inside
    /// `p`'s host (CPU, NIC) are lost — the quasi-reliable channel model.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_crash(&mut self, p: ProcessId, at: Time) {
        assert!(at >= self.now, "cannot schedule a crash in the past");
        self.queue.push(at, SimEvent::Crash { p });
    }

    /// Schedules a restart of process `p` at time `at`, replacing its node
    /// with `node` (built fresh by the caller — volatile state is lost;
    /// durable state is whatever `node`'s construction recovers, e.g. a
    /// reopened decided log). The replacement's `on_start` runs at `at`;
    /// timers armed by the crashed incarnation never reach it.
    ///
    /// The restart is a no-op if `p` is not crashed when `at` arrives.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or if `p` already has a pending
    /// replacement.
    pub fn schedule_restart(&mut self, p: ProcessId, at: Time, node: N) {
        assert!(at >= self.now, "cannot schedule a restart in the past");
        let slot = &mut self.replacements[p.as_usize()];
        assert!(slot.is_none(), "process {p} already has a pending restart");
        *slot = Some(node);
        self.queue.push(at, SimEvent::Restart { p });
    }

    /// Installs a message drop filter: any `Send` whose
    /// `(from, to, msg)` the filter maps to `true` is silently lost.
    ///
    /// This models quasi-reliable channels under crashes — use it only to
    /// drop messages whose sender crashes in the same run (the integration
    /// tests reproducing §2.2 of the paper do exactly that) or to stress
    /// safety under adversarial schedules.
    pub fn set_drop_filter(&mut self, filter: DropFilter<N::Msg>) {
        self.drop_filter = Some(filter);
    }

    /// Runs until no events remain, the time horizon `until` is passed, or
    /// the event budget is exhausted.
    pub fn run_until(&mut self, until: Time) -> StopReason {
        self.ensure_started();
        loop {
            match self.queue.peek_time() {
                None => return StopReason::Quiescent,
                Some(t) if t > until => {
                    self.now = until;
                    return StopReason::TimeLimitReached;
                }
                Some(_) => {}
            }
            if self.stats.events >= self.max_events {
                return StopReason::EventLimitReached;
            }
            self.step();
        }
    }

    /// Runs until no events remain (or the event budget is exhausted).
    ///
    /// Note that stacks with periodic timers (heartbeat failure detectors)
    /// never go quiescent; use [`SimWorld::run_until`] for those.
    pub fn run_to_quiescence(&mut self) -> StopReason {
        self.ensure_started();
        while !self.queue.is_empty() {
            if self.stats.events >= self.max_events {
                return StopReason::EventLimitReached;
            }
            self.step();
        }
        StopReason::Quiescent
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for p in ProcessId::all(self.n) {
            self.with_node(p, |node, ctx| node.on_start(ctx));
        }
    }

    fn step(&mut self) {
        let Some((t, ev)) = self.queue.pop() else { return };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.stats.events += 1;
        self.handle(ev);
    }

    fn handle(&mut self, ev: SimEvent<N::Msg, N::Command>) {
        match ev {
            SimEvent::Crash { p } => {
                self.crashed[p.as_usize()] = true;
            }
            SimEvent::Restart { p } => {
                let pi = p.as_usize();
                if !self.crashed[pi] {
                    return; // never crashed (or already restarted): no-op
                }
                let Some(node) = self.replacements[pi].take() else { return };
                self.crashed[pi] = false;
                // Invalidate every timer armed by the dead incarnation
                // *before* on_start, so the new node's own timers arm
                // under the fresh epoch.
                self.epoch[pi] += 1;
                self.nodes[pi] = node;
                self.with_node(p, |node, ctx| node.on_start(ctx));
            }
            SimEvent::Command { p, cmd } => {
                if self.alive(p) {
                    self.with_node(p, |node, ctx| node.on_command(cmd, ctx));
                }
            }
            SimEvent::TimerFired { p, timer, epoch } => {
                if self.alive(p) && epoch == self.epoch[p.as_usize()] {
                    self.with_node(p, |node, ctx| node.on_timer(timer, ctx));
                }
            }
            SimEvent::SendCpuDone { from, to, bytes, msg } => {
                if !self.alive(from) {
                    self.stats.messages_lost_to_crash += 1;
                    return;
                }
                let tx = self.params.tx_time(bytes);
                let class = msg.traffic_class();
                self.nic_tx[from.as_usize()].submit(
                    &mut self.queue,
                    from,
                    ResKind::NicTx,
                    self.now,
                    class,
                    tx,
                    Duration::ZERO,
                    Some(SimEvent::TxDone { from, to, bytes, msg }),
                );
            }
            SimEvent::TxDone { from, to, bytes, msg } => {
                if !self.alive(from) {
                    self.stats.messages_lost_to_crash += 1;
                    return;
                }
                let mut arrive = self.now + self.params.propagation;
                if let Some(lf) = &mut self.link_faults {
                    match lf.judge(self.now, from, to) {
                        LinkFault::Pass => {}
                        LinkFault::Partitioned => {
                            self.stats.frames_partitioned += 1;
                            return;
                        }
                        LinkFault::Dropped => {
                            self.stats.frames_fault_dropped += 1;
                            return;
                        }
                        LinkFault::Duplicated => {
                            self.stats.frames_duplicated += 1;
                            let copy = msg.clone();
                            self.queue.push(
                                arrive,
                                SimEvent::RxArrive { from, to, bytes, msg: copy },
                            );
                        }
                        LinkFault::Delayed(extra) => {
                            self.stats.frames_delayed += 1;
                            arrive += extra;
                        }
                        LinkFault::Reordered => {
                            // One extra propagation slot: anything sent on
                            // this link within the next slot overtakes it.
                            self.stats.frames_delayed += 1;
                            arrive += self.params.propagation;
                        }
                    }
                }
                self.queue.push(arrive, SimEvent::RxArrive { from, to, bytes, msg });
            }
            SimEvent::RxArrive { from, to, bytes, msg } => {
                if !self.alive(to) {
                    return;
                }
                let tx = self.params.tx_time(bytes);
                let class = msg.traffic_class();
                self.nic_rx[to.as_usize()].submit(
                    &mut self.queue,
                    to,
                    ResKind::NicRx,
                    self.now,
                    class,
                    tx,
                    Duration::ZERO,
                    Some(SimEvent::RxDone { from, to, bytes, msg }),
                );
            }
            SimEvent::RxDone { from, to, bytes, msg } => {
                if !self.alive(to) {
                    return;
                }
                let cost = self.params.recv_cpu(bytes);
                let class = msg.traffic_class();
                self.note_cpu(to, class, cost);
                self.cpu[to.as_usize()].submit(
                    &mut self.queue,
                    to,
                    ResKind::Cpu,
                    self.now,
                    class,
                    cost,
                    Duration::ZERO,
                    Some(SimEvent::RecvCpuDone { from, to, msg }),
                );
            }
            SimEvent::LoopbackArrive { p, msg } => {
                if !self.alive(p) {
                    return;
                }
                let cost = self.params.local_recv_cpu;
                let class = msg.traffic_class();
                self.note_cpu(p, class, cost);
                self.cpu[p.as_usize()].submit(
                    &mut self.queue,
                    p,
                    ResKind::Cpu,
                    self.now,
                    class,
                    cost,
                    Duration::ZERO,
                    Some(SimEvent::RecvCpuDone { from: p, to: p, msg }),
                );
            }
            SimEvent::RecvCpuDone { from, to, msg } => {
                if !self.alive(to) {
                    return;
                }
                self.stats.messages_delivered += 1;
                self.with_node(to, |node, ctx| node.on_message(from, msg, ctx));
            }
            SimEvent::ResourceFree { p, kind } => {
                let res = match kind {
                    ResKind::Cpu => &mut self.cpu[p.as_usize()],
                    ResKind::NicTx => &mut self.nic_tx[p.as_usize()],
                    ResKind::NicRx => &mut self.nic_rx[p.as_usize()],
                };
                res.on_free(&mut self.queue, p, kind, self.now);
            }
        }
    }

    /// Accumulates a CPU cost into the aggregate and per-class stats.
    fn note_cpu(&mut self, p: ProcessId, class: TrafficClass, cost: Duration) {
        let pi = p.as_usize();
        self.stats.cpu_busy[pi] += cost;
        match class {
            TrafficClass::Ordering => self.stats.cpu_ordering_busy[pi] += cost,
            TrafficClass::Bulk => self.stats.cpu_bulk_busy[pi] += cost,
        }
    }

    fn alive(&self, p: ProcessId) -> bool {
        !self.crashed[p.as_usize()]
    }

    /// Runs a node callback and applies the actions it produced.
    fn with_node(
        &mut self,
        p: ProcessId,
        f: impl FnOnce(&mut N, &mut Context<N::Msg, N::Output>),
    ) {
        let mut ctx = Context::new(p, self.n, self.now);
        f(&mut self.nodes[p.as_usize()], &mut ctx);
        for action in ctx.take_actions() {
            self.apply_action(p, action);
        }
    }

    fn apply_action(&mut self, p: ProcessId, action: Action<N::Msg, N::Output>) {
        match action {
            Action::Send { to, msg } => {
                if let Some(filter) = &mut self.drop_filter {
                    if filter(p, to, &msg) {
                        self.stats.messages_dropped += 1;
                        return;
                    }
                }
                self.stats.messages_sent += 1;
                let pi = p.as_usize();
                let class = msg.traffic_class();
                if to == p {
                    let cost = self.params.local_send_cpu;
                    self.note_cpu(p, class, cost);
                    let delay = self.params.loopback_delay;
                    self.cpu[pi].submit(
                        &mut self.queue,
                        p,
                        ResKind::Cpu,
                        self.now,
                        class,
                        cost,
                        delay,
                        Some(SimEvent::LoopbackArrive { p, msg }),
                    );
                } else {
                    let bytes = msg.wire_size();
                    let cost = self.params.send_cpu(bytes);
                    self.note_cpu(p, class, cost);
                    self.stats.nic_tx_busy[pi] += self.params.tx_time(bytes);
                    self.cpu[pi].submit(
                        &mut self.queue,
                        p,
                        ResKind::Cpu,
                        self.now,
                        class,
                        cost,
                        Duration::ZERO,
                        Some(SimEvent::SendCpuDone { from: p, to, bytes, msg }),
                    );
                }
            }
            Action::SetTimer { delay, timer } => {
                let epoch = self.epoch[p.as_usize()];
                self.queue.push(self.now + delay, SimEvent::TimerFired { p, timer, epoch });
            }
            Action::Work { duration } => {
                // Protocol bookkeeping (rcv checks, propose/order costs)
                // belongs to the ordering path.
                self.note_cpu(p, TrafficClass::Ordering, duration);
                self.cpu[p.as_usize()].submit(
                    &mut self.queue,
                    p,
                    ResKind::Cpu,
                    self.now,
                    TrafficClass::Ordering,
                    duration,
                    Duration::ZERO,
                    None,
                );
            }
            Action::Output(output) => {
                self.outputs.push(OutputRecord { at: self.now, process: p, output });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_runtime::TimerId;

    /// One-byte test message.
    #[derive(Clone, Debug, PartialEq)]
    struct Byte(u8);
    impl WireSize for Byte {
        fn wire_size(&self) -> usize {
            1
        }
    }

    /// Test node: on command `k`, sends `Byte(k)` to everyone (self
    /// included); outputs every byte received.
    struct Fanout;
    impl Node for Fanout {
        type Msg = Byte;
        type Command = u8;
        type Output = (ProcessId, u8);

        fn on_command(&mut self, cmd: u8, ctx: &mut Context<Byte, (ProcessId, u8)>) {
            ctx.send_to_all(Byte(cmd));
        }

        fn on_message(&mut self, from: ProcessId, msg: Byte, ctx: &mut Context<Byte, (ProcessId, u8)>) {
            ctx.output((from, msg.0));
        }
    }

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fanout_reaches_all_processes_including_self() {
        let mut w = SimBuilder::new(3, NetworkParams::setup1()).build(|_| Fanout);
        w.schedule_command(p(0), Time::ZERO, 7);
        assert_eq!(w.run_to_quiescence(), StopReason::Quiescent);
        assert_eq!(w.outputs().len(), 3);
        for rec in w.outputs() {
            assert_eq!(rec.output, (p(0), 7));
        }
        // Self-delivery uses the loop-back and is the fastest.
        let self_rec = w.outputs().iter().find(|r| r.process == p(0)).unwrap();
        let remote_rec = w.outputs().iter().find(|r| r.process == p(1)).unwrap();
        assert!(self_rec.at < remote_rec.at);
    }

    #[test]
    fn identical_runs_produce_identical_traces() {
        let run = || {
            let mut w = SimBuilder::new(4, NetworkParams::setup1()).build(|_| Fanout);
            for i in 0..50u8 {
                let at = Time::ZERO + Duration::from_micros(i as u64 * 37);
                w.schedule_command(p(u16::from(i) % 4), at, i);
            }
            w.run_to_quiescence();
            w.drain_outputs()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn big_messages_take_longer_than_small_ones() {
        #[derive(Clone, Debug)]
        struct Sized(usize);
        impl WireSize for Sized {
            fn wire_size(&self) -> usize {
                self.0
            }
        }
        struct Sender;
        impl Node for Sender {
            type Msg = Sized;
            type Command = usize;
            type Output = usize;
            fn on_command(&mut self, size: usize, ctx: &mut Context<Sized, usize>) {
                ctx.send(ProcessId::new(1), Sized(size));
            }
            fn on_message(&mut self, _f: ProcessId, m: Sized, ctx: &mut Context<Sized, usize>) {
                ctx.output(m.0);
            }
        }
        let latency_of = |size: usize| {
            let mut w = SimBuilder::new(2, NetworkParams::setup1()).build(|_| Sender);
            w.schedule_command(p(0), Time::ZERO, size);
            w.run_to_quiescence();
            w.outputs()[0].at
        };
        assert!(latency_of(5000) > latency_of(10));
    }

    #[test]
    fn crashed_process_stops_processing() {
        let mut w = SimBuilder::new(3, NetworkParams::setup1()).build(|_| Fanout);
        w.schedule_crash(p(2), Time::ZERO + Duration::from_micros(1));
        // Command arrives after the crash: ignored.
        w.schedule_command(p(2), Time::ZERO + Duration::from_millis(1), 9);
        // A healthy process broadcasts; p2 must not deliver.
        w.schedule_command(p(0), Time::ZERO + Duration::from_millis(1), 5);
        w.run_to_quiescence();
        assert!(w.is_crashed(p(2)));
        assert!(w.outputs().iter().all(|r| r.process != p(2)));
        // p0 and p1 still delivered p0's fanout.
        assert_eq!(w.outputs().iter().filter(|r| r.output == (p(0), 5)).count(), 2);
    }

    #[test]
    fn crash_loses_messages_still_inside_the_host() {
        // p0 fans out and crashes immediately after the send action: the
        // copies are still in p0's CPU/NIC pipeline, so nobody receives them.
        let mut w = SimBuilder::new(3, NetworkParams::setup1()).build(|_| Fanout);
        w.schedule_command(p(0), Time::ZERO, 1);
        w.schedule_crash(p(0), Time::ZERO + Duration::from_nanos(1));
        w.run_to_quiescence();
        assert_eq!(w.outputs().len(), 0);
        assert!(w.stats().messages_lost_to_crash > 0);
    }

    #[test]
    fn restart_swaps_in_a_fresh_node_and_drops_stale_timers() {
        // A node that arms a long timer at start and outputs on fire; the
        // replacement must only see its own (epoch-fresh) timer.
        struct Epochal(u8);
        impl Node for Epochal {
            type Msg = Byte;
            type Command = u8;
            type Output = (u8, u64);
            fn on_start(&mut self, ctx: &mut Context<Byte, (u8, u64)>) {
                ctx.set_timer(Duration::from_millis(10), TimerId::new(1, u64::from(self.0)));
            }
            fn on_command(&mut self, cmd: u8, ctx: &mut Context<Byte, (u8, u64)>) {
                ctx.send_to_all(Byte(cmd));
            }
            fn on_message(&mut self, _f: ProcessId, m: Byte, ctx: &mut Context<Byte, (u8, u64)>) {
                ctx.output((self.0, u64::from(m.0)));
            }
            fn on_timer(&mut self, t: TimerId, ctx: &mut Context<Byte, (u8, u64)>) {
                ctx.output((self.0, t.data()));
            }
        }
        use crate::faults::CrashSchedule;
        let crash_at = Time::ZERO + Duration::from_millis(1);
        let restart_at = Time::ZERO + Duration::from_millis(5);
        let mut incarnation = 0u8;
        let mut w = SimBuilder::new(2, NetworkParams::setup1())
            .faults(FaultPlan::with_crashes(
                CrashSchedule::new().crash_restart(p(1), crash_at, restart_at),
            ))
            .build(|q| {
                // The factory runs once per process plus once for p1's
                // replacement; tag incarnations so outputs distinguish them.
                if q == p(1) {
                    incarnation += 1;
                    Epochal(incarnation)
                } else {
                    Epochal(0)
                }
            });
        // A fan-out after the restart reaches the *new* node.
        w.schedule_command(p(0), Time::ZERO + Duration::from_millis(8), 7);
        w.run_to_quiescence();
        assert!(!w.is_crashed(p(1)));
        let p1_outputs: Vec<(u8, u64)> = w
            .outputs()
            .iter()
            .filter(|r| r.process == p(1))
            .map(|r| r.output)
            .collect();
        // The crashed incarnation (1) armed its timer before dying: that
        // timer must NOT fire into incarnation 2. Incarnation 2's own
        // timer (data = 2) and the post-restart delivery both appear.
        assert!(p1_outputs.contains(&(2, 2)), "replacement's own timer fires");
        assert!(p1_outputs.contains(&(2, 7)), "replacement receives messages");
        assert!(
            p1_outputs.iter().all(|&(inc, _)| inc == 2),
            "no output may come from the dead incarnation: {p1_outputs:?}"
        );
    }

    #[test]
    fn partition_window_cuts_and_heals_a_link() {
        use crate::faults::LinkFaults;
        // p0 ↔ p2 partitioned for the first 5 ms: a fan-out at 1 ms misses
        // p2; a fan-out at 8 ms (healed) reaches everyone.
        let links = LinkFaults::new(0).partition(p(0), p(2), Time::ZERO, Time::ZERO + Duration::from_millis(5));
        let mut w = SimBuilder::new(3, NetworkParams::setup1())
            .faults(FaultPlan::with_links(links))
            .build(|_| Fanout);
        w.schedule_command(p(0), Time::ZERO + Duration::from_millis(1), 1);
        w.schedule_command(p(0), Time::ZERO + Duration::from_millis(8), 2);
        w.run_to_quiescence();
        let got = |proc: ProcessId, byte: u8| {
            w.outputs().iter().any(|r| r.process == proc && r.output == (p(0), byte))
        };
        assert!(!got(p(2), 1), "partitioned frame must be lost");
        assert!(got(p(1), 1), "unaffected link delivers");
        assert!(got(p(2), 2), "healed link delivers");
        assert_eq!(w.stats().frames_partitioned, 1);
    }

    #[test]
    fn duplicated_frames_are_delivered_twice() {
        use crate::faults::LinkFaults;
        // 100% duplication: every remote delivery happens twice.
        let links = LinkFaults::new(0).duplicate(1000);
        let mut w = SimBuilder::new(2, NetworkParams::setup1())
            .faults(FaultPlan::with_links(links))
            .build(|_| Fanout);
        w.schedule_command(p(0), Time::ZERO, 9);
        w.run_to_quiescence();
        let remote = w.outputs().iter().filter(|r| r.process == p(1)).count();
        assert_eq!(remote, 2, "duplicate copy must arrive");
        assert_eq!(w.stats().frames_duplicated, 1);
    }

    #[test]
    fn empty_link_plan_changes_nothing() {
        use crate::faults::LinkFaults;
        let run = |links: Option<LinkFaults>| {
            let plan = match links {
                Some(l) => FaultPlan::with_links(l),
                None => FaultPlan::none(),
            };
            let mut w = SimBuilder::new(3, NetworkParams::setup1()).faults(plan).build(|_| Fanout);
            for i in 0..20u8 {
                let at = Time::ZERO + Duration::from_micros(u64::from(i) * 53);
                w.schedule_command(p(u16::from(i) % 3), at, i);
            }
            w.run_to_quiescence();
            w.drain_outputs()
        };
        // A LinkFaults with no faults configured must be bit-identical to
        // no fault layer at all (partitions consume no randomness; zero
        // probabilities skip the draw entirely).
        assert_eq!(run(None), run(Some(LinkFaults::new(123))));
    }

    #[test]
    fn delayed_frames_arrive_late_but_arrive() {
        use crate::faults::LinkFaults;
        let latency = |links: Option<LinkFaults>| {
            let plan = match links {
                Some(l) => FaultPlan::with_links(l),
                None => FaultPlan::none(),
            };
            let mut w = SimBuilder::new(2, NetworkParams::setup1()).faults(plan).build(|_| Fanout);
            w.schedule_command(p(0), Time::ZERO, 1);
            w.run_to_quiescence();
            w.outputs().iter().find(|r| r.process == p(1)).map(|r| r.at).unwrap()
        };
        let base = latency(None);
        let delayed = latency(Some(
            LinkFaults::new(0).delay(1000, Duration::from_millis(3)),
        ));
        assert!(delayed > base, "delayed {delayed} vs base {base}");
        assert!(delayed <= base + Duration::from_millis(3));
    }

    #[test]
    fn drop_filter_removes_selected_messages() {
        let mut w = SimBuilder::new(3, NetworkParams::setup1()).build(|_| Fanout);
        // Drop everything p0 sends to p2.
        w.set_drop_filter(Box::new(|from, to, _m| from == p(0) && to == p(2)));
        w.schedule_command(p(0), Time::ZERO, 3);
        w.run_to_quiescence();
        let receivers: Vec<_> = w.outputs().iter().map(|r| r.process).collect();
        assert!(receivers.contains(&p(0)));
        assert!(receivers.contains(&p(1)));
        assert!(!receivers.contains(&p(2)));
        assert_eq!(w.stats().messages_dropped, 1);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = SimBuilder::new(2, NetworkParams::setup1()).build(|_| Fanout);
        let late = Time::ZERO + Duration::from_secs(10);
        w.schedule_command(p(0), late, 1);
        let r = w.run_until(Time::ZERO + Duration::from_secs(1));
        assert_eq!(r, StopReason::TimeLimitReached);
        assert_eq!(w.now(), Time::ZERO + Duration::from_secs(1));
        assert!(w.outputs().is_empty());
        assert_eq!(w.run_to_quiescence(), StopReason::Quiescent);
        assert_eq!(w.outputs().len(), 2);
    }

    #[test]
    fn event_budget_guards_against_livelock() {
        // A node that ping-pongs with itself forever.
        struct Loopy;
        impl Node for Loopy {
            type Msg = Byte;
            type Command = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<Byte, ()>) {
                ctx.send(ctx.me(), Byte(0));
            }
            fn on_message(&mut self, _f: ProcessId, m: Byte, ctx: &mut Context<Byte, ()>) {
                ctx.send(ctx.me(), m);
            }
        }
        let mut w = SimBuilder::new(1, NetworkParams::setup1()).max_events(1000).build(|_| Loopy);
        assert_eq!(w.run_to_quiescence(), StopReason::EventLimitReached);
    }

    #[test]
    fn timers_fire_at_requested_delay() {
        struct Alarm;
        impl Node for Alarm {
            type Msg = Byte;
            type Command = ();
            type Output = u64;
            fn on_start(&mut self, ctx: &mut Context<Byte, u64>) {
                ctx.set_timer(Duration::from_millis(5), TimerId::new(1, 11));
            }
            fn on_timer(&mut self, t: TimerId, ctx: &mut Context<Byte, u64>) {
                ctx.output(t.data());
            }
        }
        let mut w = SimBuilder::new(1, NetworkParams::setup1()).build(|_| Alarm);
        w.run_to_quiescence();
        assert_eq!(w.outputs().len(), 1);
        assert_eq!(w.outputs()[0].at, Time::ZERO + Duration::from_millis(5));
        assert_eq!(w.outputs()[0].output, 11);
    }

    #[test]
    fn nic_serializes_concurrent_sends() {
        // Two large messages to different destinations must serialize on the
        // sender NIC: second arrives roughly one transmission time later.
        #[derive(Clone, Debug)]
        struct Big;
        impl WireSize for Big {
            fn wire_size(&self) -> usize {
                12_442 // + 58 header = 12.5 KB = 1 ms at 12.5 MB/s
            }
        }
        struct Burst;
        impl Node for Burst {
            type Msg = Big;
            type Command = ();
            type Output = ();
            fn on_command(&mut self, _c: (), ctx: &mut Context<Big, ()>) {
                ctx.send(ProcessId::new(1), Big);
                ctx.send(ProcessId::new(2), Big);
            }
            fn on_message(&mut self, _f: ProcessId, _m: Big, ctx: &mut Context<Big, ()>) {
                ctx.output(());
            }
        }
        let mut w = SimBuilder::new(3, NetworkParams::setup1()).build(|_| Burst);
        w.schedule_command(p(0), Time::ZERO, ());
        w.run_to_quiescence();
        let mut times: Vec<Time> = w.outputs().iter().map(|r| r.at).collect();
        times.sort();
        let gap = times[1].elapsed_since(times[0]);
        // The NIC gap should be ≈ 1 transmission time (1 ms), well above the
        // CPU-only gap (~200 µs).
        assert!(gap >= Duration::from_micros(900), "gap was {gap}");
    }
}
