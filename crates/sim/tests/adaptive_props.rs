//! Property-based tests of the adaptive pipeline-window controller on the
//! simulator: under scripted load steps and random schedules (with and
//! without crashes), the window must stay inside `[w_min, w_max]` at every
//! observation point, the atomic broadcast invariants (one duplicate-free
//! total order at every correct process) must hold at every adaptation
//! point, and at steady load the controller must converge instead of
//! oscillating forever.

use iabc_core::stacks::{self, StackParams};
use iabc_core::{AbcastCommand, AbcastEvent};
use iabc_sim::{CrashSchedule, FaultPlan, NetworkParams, SimBuilder, SimWorld};
use iabc_types::{Duration, MsgId, Payload, ProcessId, Time};
use proptest::prelude::*;

const W_MIN: usize = 1;
const W_MAX: usize = 16;

type Node = iabc_core::AbcastNode<
    iabc_types::IdSet,
    iabc_consensus::CtIndirect<iabc_types::IdSet>,
>;

fn adaptive_params() -> StackParams {
    StackParams::with_heartbeat(3, Duration::from_millis(10), Duration::from_millis(60))
        .with_adaptive_window(W_MIN, W_MAX)
        .with_proposal_cap(4)
        // Tight target so adaptation actually fires in short runs.
        .with_latency_target(Duration::from_millis(2))
        .with_backlog_limit(64)
}

/// Asserts per-process delivery orders are duplicate-free and that
/// correct processes agree on a common prefix (the shorter order must be
/// a prefix of the longer). Returns the orders.
fn check_orders_at(
    world: &SimWorld<Node>,
    crashed: impl Fn(usize) -> bool,
    label: &str,
) -> Result<Vec<Vec<MsgId>>, TestCaseError> {
    let mut orders = vec![Vec::new(); 3];
    for rec in world.outputs() {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    for (i, order) in orders.iter().enumerate() {
        if crashed(i) {
            continue;
        }
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), order.len(), "{} p{}: duplicate delivery", label, i);
    }
    // Every correct order must be a prefix of the *longest* one —
    // prefix-consistency is not transitive, so pairwise-adjacent checks
    // could miss a divergence hidden behind a lagging middle process.
    let correct: Vec<&Vec<MsgId>> =
        orders.iter().enumerate().filter(|(i, _)| !crashed(*i)).map(|(_, o)| o).collect();
    if let Some(longest) = correct.iter().max_by_key(|o| o.len()) {
        for order in &correct {
            prop_assert_eq!(
                order.as_slice(),
                &longest[..order.len()],
                "{}: correct processes diverge",
                label
            );
        }
    }
    Ok(orders)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random schedules, optional random crash: at every 50 ms observation
    /// point the window is in bounds and the delivered orders are
    /// duplicate-free and prefix-consistent — i.e. the invariants hold at
    /// every adaptation point, not just at the end.
    #[test]
    fn adaptive_window_stays_in_bounds_and_safe(
        msgs in proptest::collection::vec((0u16..3, 0u64..200_000, 0usize..64), 1..40),
        crash in proptest::option::of((0u16..3, 0u64..150_000)),
    ) {
        let params = adaptive_params();
        let mut builder = SimBuilder::new(3, NetworkParams::setup1());
        if let Some((p, at)) = crash {
            builder = builder.faults(FaultPlan::with_crashes(
                CrashSchedule::new()
                    .crash(ProcessId::new(p), Time::ZERO + Duration::from_micros(at)),
            ));
        }
        let mut world = builder.build(|p| stacks::indirect_ct(p, &params));
        for &(p, at, size) in &msgs {
            world.schedule_command(
                ProcessId::new(p),
                Time::ZERO + Duration::from_micros(at),
                AbcastCommand::Broadcast(Payload::zeroed(size)),
            );
        }
        let crashed = |i: usize| crash.is_some_and(|(p, _)| p as usize == i);
        let horizon = Time::ZERO + Duration::from_secs(15);
        let mut cursor = Time::ZERO;
        while cursor < horizon {
            cursor += Duration::from_millis(50);
            world.run_until(cursor);
            for p in ProcessId::all(3) {
                let w = world.node(p).window();
                prop_assert!(
                    (W_MIN..=W_MAX).contains(&w),
                    "p{} window {} escaped [{}, {}]",
                    p.as_usize(), w, W_MIN, W_MAX
                );
            }
            check_orders_at(&world, crashed, "mid-run")?;
        }
        // At the settled horizon correct processes must agree exactly.
        let orders = check_orders_at(&world, crashed, "settled")?;
        let correct: Vec<&Vec<MsgId>> = orders
            .iter()
            .enumerate()
            .filter(|(i, _)| !crashed(*i))
            .map(|(_, o)| o)
            .collect();
        for pair in correct.windows(2) {
            prop_assert_eq!(pair[0], pair[1], "correct processes disagree at the horizon");
        }
    }

    /// The EWMA-relative congestion signal (`with_ewma_signal`): same
    /// invariants as the absolute-target controller — window inside
    /// `[w_min, w_max]` at every observation point, orders duplicate-free
    /// and prefix-consistent throughout, full agreement at the horizon,
    /// and nothing lost fault-free. The signal changes *when* the window
    /// halves, never what the pipeline is allowed to do.
    #[test]
    fn ewma_signal_keeps_bounds_and_safety(
        msgs in proptest::collection::vec((0u16..3, 0u64..200_000, 0usize..64), 1..40),
    ) {
        let params = adaptive_params().with_ewma_signal();
        let mut world = SimBuilder::new(3, NetworkParams::setup1())
            .build(|p| stacks::indirect_ct(p, &params));
        let mut total = 0u64;
        for &(p, at, size) in &msgs {
            world.schedule_command(
                ProcessId::new(p),
                Time::ZERO + Duration::from_micros(at),
                AbcastCommand::Broadcast(Payload::zeroed(size)),
            );
            total += 1;
        }
        let horizon = Time::ZERO + Duration::from_secs(15);
        let mut cursor = Time::ZERO;
        while cursor < horizon {
            cursor += Duration::from_millis(50);
            world.run_until(cursor);
            for p in ProcessId::all(3) {
                let w = world.node(p).window();
                prop_assert!(
                    (W_MIN..=W_MAX).contains(&w),
                    "p{} window {} escaped [{}, {}] under the EWMA signal",
                    p.as_usize(), w, W_MIN, W_MAX
                );
            }
            check_orders_at(&world, |_| false, "ewma-mid-run")?;
        }
        let orders = check_orders_at(&world, |_| false, "ewma-settled")?;
        for (i, order) in orders.iter().enumerate() {
            prop_assert_eq!(order.len() as u64, total, "p{} lost deliveries", i);
        }
        for pair in orders.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "processes disagree at the horizon");
        }
    }

    /// Scripted load steps (idle → burst → idle …): bounds hold throughout
    /// and nothing is lost fault-free, whatever the burst sizes are.
    #[test]
    fn load_steps_keep_the_window_bounded_and_lossless(
        bursts in proptest::collection::vec(1usize..30, 1..5),
    ) {
        let params = adaptive_params();
        let mut world =
            SimBuilder::new(3, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));
        let mut at = Duration::from_millis(1);
        let mut total = 0u64;
        for (step, &burst) in bursts.iter().enumerate() {
            // A burst arrives nearly at once...
            for i in 0..burst {
                world.schedule_command(
                    ProcessId::new((i % 3) as u16),
                    Time::ZERO + at + Duration::from_micros(i as u64 * 50),
                    AbcastCommand::Broadcast(Payload::zeroed(8)),
                );
                total += 1;
            }
            // ...followed by an idle gap before the next step.
            at += Duration::from_millis(200 + 100 * step as u64);
        }
        let horizon = Time::ZERO + at + Duration::from_secs(15);
        let mut cursor = Time::ZERO;
        while cursor < horizon {
            cursor += Duration::from_millis(100);
            world.run_until(cursor);
            for p in ProcessId::all(3) {
                let w = world.node(p).window();
                prop_assert!((W_MIN..=W_MAX).contains(&w), "window {} out of bounds", w);
            }
        }
        let orders = check_orders_at(&world, |_| false, "load-steps")?;
        for (i, order) in orders.iter().enumerate() {
            prop_assert_eq!(order.len() as u64, total, "p{} lost deliveries", i);
        }
    }
}

/// At steady moderate load the controller settles: over the final stretch
/// of a long run the window takes at most two adjacent values (AIMD keeps
/// probing by ±1 — flapping across the whole range would be oscillation),
/// and adaptation events become rare.
#[test]
fn adaptive_window_converges_at_steady_load() {
    let params = StackParams::with_heartbeat(
        3,
        Duration::from_millis(10),
        Duration::from_millis(60),
    )
    .with_adaptive_window(W_MIN, W_MAX)
    .with_proposal_cap(8);
    let mut world =
        SimBuilder::new(3, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));
    // Steady 300 msg/s for 8 s, uniformly spaced.
    let horizon_ms = 8_000u64;
    let mut i = 0u64;
    let mut at = 0u64;
    while at < horizon_ms * 1000 {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_micros(at),
            AbcastCommand::Broadcast(Payload::zeroed(8)),
        );
        i += 1;
        at += 3_333;
    }
    // Run the first 6 s, then track the tail.
    world.run_until(Time::ZERO + Duration::from_secs(6));
    let adaptations_at_6s: Vec<(u64, u64)> =
        ProcessId::all(3).map(|p| world.node(p).window_adaptations()).collect();
    let mut tail_windows: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); 3];
    let mut cursor = Duration::from_secs(6);
    while cursor < Duration::from_millis(horizon_ms) {
        cursor += Duration::from_millis(100);
        world.run_until(Time::ZERO + cursor);
        for p in ProcessId::all(3) {
            tail_windows[p.as_usize()].insert(world.node(p).window());
        }
    }
    for p in ProcessId::all(3) {
        let seen = &tail_windows[p.as_usize()];
        assert!(
            seen.len() <= 2,
            "p{} window kept oscillating over the tail: {seen:?}",
            p.as_usize()
        );
        if seen.len() == 2 {
            let lo = *seen.iter().next().unwrap();
            let hi = *seen.iter().next_back().unwrap();
            assert!(
                hi - lo <= lo.max(1),
                "p{} window flapped across the range: {seen:?}",
                p.as_usize()
            );
        }
        let (inc0, dec0) = adaptations_at_6s[p.as_usize()];
        let (inc1, dec1) = world.node(p).window_adaptations();
        assert!(
            (inc1 - inc0) + (dec1 - dec0) <= 6,
            "p{}: {} adaptations in the final 2 s of steady load",
            p.as_usize(),
            (inc1 - inc0) + (dec1 - dec0)
        );
    }
}

/// The controller must actually adapt when load demands it (the bounds
/// test alone would pass with a dead controller): a saturating burst
/// spills past the cap and widens the window, and the trailing idle
/// period shrinks it back toward `w_min`.
#[test]
fn adaptive_window_reacts_to_load() {
    let params = StackParams::with_heartbeat(
        3,
        Duration::from_millis(10),
        Duration::from_millis(60),
    )
    .with_adaptive_window(W_MIN, W_MAX)
    .with_proposal_cap(4)
    .with_latency_target(Duration::from_millis(5));
    let mut world =
        SimBuilder::new(3, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));
    // 120 broadcasts in 12 ms: far more than W_MIN × cap can hold.
    for i in 0..120u64 {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_micros(100 * i),
            AbcastCommand::Broadcast(Payload::zeroed(8)),
        );
    }
    // Mid-burst: the window must have grown off its floor.
    world.run_until(Time::ZERO + Duration::from_millis(40));
    let grown = ProcessId::all(3).any(|p| world.node(p).window() > W_MIN);
    assert!(grown, "no node widened its window under a spilling burst");
    let capped = ProcessId::all(3).any(|p| world.node(p).proposal_cap_hits() > 0);
    assert!(capped, "the burst never hit the proposal cap");
    // Long idle tail: decisions drain, congestion halves the window back.
    world.run_until(Time::ZERO + Duration::from_secs(20));
    for p in ProcessId::all(3) {
        assert_eq!(
            world.node(p).delivered_count(),
            120,
            "p{} did not deliver the whole burst",
            p.as_usize()
        );
        let (increases, decreases) = world.node(p).window_adaptations();
        assert!(increases > 0, "p{} never grew", p.as_usize());
        assert!(decreases > 0, "p{} never shrank", p.as_usize());
    }
}
