//! Property-based tests of pipelined atomic broadcast on the simulator:
//! for every random workload and crash pattern, and for every window width
//! `W ∈ {1, 4, 16}`, all correct processes must deliver the same total
//! order with no duplicate or lost identifiers — and the *set* of
//! delivered identifiers must not depend on `W` (the window changes
//! scheduling, never outcomes).

use iabc_core::stacks::{self, StackParams};
use iabc_core::{AbcastCommand, AbcastEvent};
use iabc_sim::{CrashSchedule, FaultPlan, NetworkParams, SimBuilder};
use iabc_types::{Duration, MsgId, Payload, ProcessId, Time};
use proptest::prelude::*;

const WINDOWS: [usize; 3] = [1, 4, 16];

/// Runs one schedule at window `w`; returns per-process delivery orders.
fn run_at_window(
    w: usize,
    msgs: &[(u16, u64, usize)],
    crash: Option<(u16, u64)>,
) -> Vec<Vec<MsgId>> {
    let params = StackParams::with_heartbeat(
        3,
        Duration::from_millis(10),
        Duration::from_millis(60),
    )
    .with_window(w);
    let mut builder = SimBuilder::new(3, NetworkParams::setup1());
    if let Some((p, at)) = crash {
        builder = builder.faults(FaultPlan::with_crashes(
            CrashSchedule::new().crash(ProcessId::new(p), Time::ZERO + Duration::from_micros(at)),
        ));
    }
    let mut world = builder.build(|p| stacks::indirect_ct(p, &params));
    for &(p, at, size) in msgs {
        world.schedule_command(
            ProcessId::new(p),
            Time::ZERO + Duration::from_micros(at),
            AbcastCommand::Broadcast(Payload::zeroed(size)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_secs(15));
    let mut orders = vec![Vec::new(); 3];
    for rec in world.outputs() {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    orders
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Under one random crash, every window width keeps all correct
    /// processes in one duplicate-free total order.
    #[test]
    fn windows_preserve_order_under_crashes(
        msgs in proptest::collection::vec((0u16..3, 0u64..200_000, 0usize..128), 1..25),
        crash in proptest::option::of((0u16..3, 0u64..150_000)),
    ) {
        for &w in &WINDOWS {
            let orders = run_at_window(w, &msgs, crash);
            for (i, order) in orders.iter().enumerate() {
                if crash.is_some_and(|(p, _)| p as usize == i) {
                    continue; // crashed processes owe nothing
                }
                let mut dedup = order.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(
                    dedup.len(),
                    order.len(),
                    "W={} p{}: duplicate delivery",
                    w,
                    i
                );
            }
            // Correct processes agree on one order (prefix-compatible; at
            // a settled horizon they are equal).
            let correct: Vec<&Vec<MsgId>> = orders
                .iter()
                .enumerate()
                .filter(|(i, _)| crash.is_none_or(|(p, _)| p as usize != *i))
                .map(|(_, o)| o)
                .collect();
            for pair in correct.windows(2) {
                prop_assert_eq!(pair[0], pair[1], "W={} correct processes disagree", w);
            }
        }
    }

    /// Fault-free, the delivered *set* is identical at every window width:
    /// pipelining changes when instances run, never what gets delivered.
    #[test]
    fn window_width_never_changes_the_delivered_set(
        msgs in proptest::collection::vec((0u16..3, 0u64..100_000, 0usize..128), 1..25),
    ) {
        let mut sets: Vec<Vec<MsgId>> = Vec::new();
        for &w in &WINDOWS {
            let orders = run_at_window(w, &msgs, None);
            prop_assert_eq!(orders[0].len(), msgs.len(), "W={} lost messages", w);
            let mut set = orders[0].clone();
            set.sort_unstable();
            sets.push(set);
        }
        prop_assert_eq!(&sets[0], &sets[1]);
        prop_assert_eq!(&sets[1], &sets[2]);
    }
}
