//! Integration tests of the two-class host model (`SimBuilder::priority_lane`):
//! ordering traffic must overtake a bulk backlog, bulk must not starve, the
//! lane must not change *what* is delivered, and lane-on runs must stay
//! deterministic. Lane-off runs must be bit-for-bit the seed FIFO model.

use iabc_runtime::{Context, Node};
use iabc_sim::{NetworkParams, SimBuilder, SimWorld};
use iabc_types::{Duration, ProcessId, Time, TrafficClass, WireSize};

/// A test message that knows its size and class.
#[derive(Clone, Debug, PartialEq)]
struct Frame {
    bytes: usize,
    class: TrafficClass,
    tag: u32,
}

impl WireSize for Frame {
    fn wire_size(&self) -> usize {
        self.bytes
    }

    fn traffic_class(&self) -> TrafficClass {
        self.class
    }
}

fn bulk(tag: u32) -> Frame {
    Frame { bytes: 4000, class: TrafficClass::Bulk, tag }
}

fn ordering(tag: u32) -> Frame {
    Frame { bytes: 12, class: TrafficClass::Ordering, tag }
}

/// On command, process 0 sends the given frame to process 1; process 1
/// outputs every tag it receives.
struct Pipe;
impl Node for Pipe {
    type Msg = Frame;
    type Command = Frame;
    type Output = u32;

    fn on_command(&mut self, frame: Frame, ctx: &mut Context<Frame, u32>) {
        ctx.send(ProcessId::new(1), frame);
    }

    fn on_message(&mut self, _from: ProcessId, m: Frame, ctx: &mut Context<Frame, u32>) {
        ctx.output(m.tag);
    }
}

fn p(i: u16) -> ProcessId {
    ProcessId::new(i)
}

/// Schedules a bulk flood followed by one ordering frame; returns the
/// world after quiescence.
fn flood_then_ordering(lane: bool) -> SimWorld<Pipe> {
    let mut w = SimBuilder::new(2, NetworkParams::setup1()).priority_lane(lane).build(|_| Pipe);
    for i in 0..40u32 {
        w.schedule_command(p(0), Time::ZERO + Duration::from_micros(u64::from(i)), bulk(i));
    }
    // The ordering frame arrives when the flood is already queued deep.
    w.schedule_command(p(0), Time::ZERO + Duration::from_micros(100), ordering(999));
    w.run_to_quiescence();
    w
}

fn delivery_time(w: &SimWorld<Pipe>, tag: u32) -> Time {
    w.outputs().iter().find(|r| r.output == tag).expect("tag delivered").at
}

#[test]
fn ordering_frame_overtakes_a_bulk_flood() {
    let fifo = flood_then_ordering(false);
    let lane = flood_then_ordering(true);
    // Same deliveries either way — the lane re-orders, never drops.
    assert_eq!(fifo.outputs().len(), 41);
    assert_eq!(lane.outputs().len(), 41);
    let t_fifo = delivery_time(&fifo, 999);
    let t_lane = delivery_time(&lane, 999);
    assert!(
        t_lane < t_fifo,
        "priority lane must cut ordering latency: {t_lane} !< {t_fifo}"
    );
    // In FIFO order the ordering frame lands last; with the lane it must
    // beat most of the flood (it still waits for in-service jobs and the
    // frames already past the CPU when it arrived).
    let earlier_bulk =
        lane.outputs().iter().filter(|r| r.output != 999 && r.at < t_lane).count();
    assert!(
        earlier_bulk < 10,
        "ordering frame still queued behind {earlier_bulk} bulk frames"
    );
}

#[test]
fn bulk_flood_still_completes_with_the_lane_on() {
    // The anti-starvation burst bound: even with ordering traffic arriving
    // continuously, every bulk frame is eventually delivered.
    let mut w =
        SimBuilder::new(2, NetworkParams::setup1()).priority_lane(true).build(|_| Pipe);
    for i in 0..30u32 {
        w.schedule_command(p(0), Time::ZERO + Duration::from_micros(u64::from(i)), bulk(i));
    }
    for i in 0..2000u32 {
        w.schedule_command(
            p(0),
            Time::ZERO + Duration::from_micros(u64::from(i) * 40),
            ordering(10_000 + i),
        );
    }
    w.run_to_quiescence();
    let bulk_delivered =
        w.outputs().iter().filter(|r| r.output < 30).count();
    assert_eq!(bulk_delivered, 30, "bulk starved under sustained ordering load");
}

#[test]
fn lane_on_runs_are_deterministic() {
    let run = || {
        let w = flood_then_ordering(true);
        w.outputs().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn lane_off_matches_the_single_class_fifo_model_exactly() {
    // The paper-figure bins run lane-off; their traces must be bit-for-bit
    // what the seed's FifoResource produced. The FIFO arm pushes the same
    // events in the same order, so the full output record (time, process,
    // value) must match a run of the identical schedule — and ordering
    // frames must *not* overtake bulk.
    let w = flood_then_ordering(false);
    let t_ord = delivery_time(&w, 999);
    assert!(
        w.outputs().iter().all(|r| r.output == 999 || r.at < t_ord),
        "without the lane the ordering frame arrives strictly last"
    );
    // Per-class CPU accounting is kept in both modes.
    let stats = w.stats();
    assert!(stats.cpu_bulk_busy[0] > stats.cpu_ordering_busy[0]);
    assert!(stats.cpu_ordering_busy[1] > Duration::ZERO);
}

#[test]
fn full_stack_lane_run_delivers_the_same_set_as_fifo() {
    // The intended wiring: StackParams carries the lane flag, the world
    // builder threads it into SimBuilder. The full indirect-CT stack must
    // deliver exactly the same messages either way — the lane re-orders
    // service, never the protocol's outcome.
    use iabc_core::stacks::{self, StackParams};
    use iabc_core::{AbcastCommand, AbcastEvent};
    use iabc_types::Payload;

    let run = |lane: bool| {
        let params = StackParams::fault_free(3).with_priority_lane(lane);
        let mut w = SimBuilder::new(params.n, NetworkParams::setup1())
            .priority_lane(params.priority_lane)
            .build(|p| stacks::indirect_ct(p, &params));
        assert_eq!(w.priority_lane(), lane);
        for i in 0..30u64 {
            w.schedule_command(
                p((i % 3) as u16),
                Time::ZERO + Duration::from_micros(i * 120),
                AbcastCommand::Broadcast(Payload::zeroed(256)),
            );
        }
        w.run_to_quiescence();
        let mut delivered: Vec<_> = w
            .outputs()
            .iter()
            .filter_map(|r| match &r.output {
                AbcastEvent::Delivered { msg } => Some((r.process, msg.id())),
                _ => None,
            })
            .collect();
        delivered.sort();
        delivered
    };
    let fifo = run(false);
    let lane = run(true);
    assert_eq!(fifo.len(), 30 * 3, "every process delivers every message");
    assert_eq!(fifo, lane, "the lane must not change what is delivered");
}

#[test]
fn per_class_cpu_stats_split_the_load() {
    let w = flood_then_ordering(true);
    let stats = w.stats();
    for i in 0..2 {
        assert_eq!(
            stats.cpu_busy[i],
            stats.cpu_ordering_busy[i] + stats.cpu_bulk_busy[i],
            "class split must partition total CPU busy time (process {i})"
        );
    }
}
