//! Property-based tests of the simulator: per-link FIFO ordering, latency
//! monotonicity in message size, and trace determinism.

use iabc_runtime::{Context, Node};
use iabc_sim::{NetworkParams, SimBuilder};
use iabc_types::{Duration, ProcessId, Time, WireSize};
use proptest::prelude::*;

/// A message with an explicit sequence number and size.
#[derive(Clone, Debug, PartialEq)]
struct SeqMsg {
    seq: u64,
    size: usize,
}

impl WireSize for SeqMsg {
    fn wire_size(&self) -> usize {
        self.size
    }
}

/// Sends pre-programmed messages to p1 when commanded; p1 records arrivals.
struct Pipe;

impl Node for Pipe {
    type Msg = SeqMsg;
    type Command = SeqMsg;
    type Output = u64;

    fn on_command(&mut self, cmd: SeqMsg, ctx: &mut Context<SeqMsg, u64>) {
        ctx.send(ProcessId::new(1), cmd);
    }

    fn on_message(&mut self, _from: ProcessId, msg: SeqMsg, ctx: &mut Context<SeqMsg, u64>) {
        ctx.output(msg.seq);
    }
}

proptest! {
    /// Messages sent on one link arrive in send order (FIFO links), no
    /// matter the sizes involved: big frames must not be overtaken.
    #[test]
    fn links_are_fifo(sizes in proptest::collection::vec(1usize..4096, 1..40)) {
        let mut world = SimBuilder::new(2, NetworkParams::setup1()).build(|_| Pipe);
        for (i, &size) in sizes.iter().enumerate() {
            world.schedule_command(
                ProcessId::new(0),
                Time::ZERO + Duration::from_micros(i as u64),
                SeqMsg { seq: i as u64, size },
            );
        }
        world.run_to_quiescence();
        let arrived: Vec<u64> = world.outputs().iter().map(|r| r.output).collect();
        let expected: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(arrived, expected, "link reordered messages");
    }

    /// One-way latency is monotone in message size (same network, same
    /// instant, bigger frame ⇒ later arrival).
    #[test]
    fn latency_is_monotone_in_size(a in 1usize..100_000, b in 1usize..100_000) {
        let latency_of = |size: usize| {
            let mut world = SimBuilder::new(2, NetworkParams::setup1()).build(|_| Pipe);
            world.schedule_command(ProcessId::new(0), Time::ZERO, SeqMsg { seq: 0, size });
            world.run_to_quiescence();
            world.outputs()[0].at
        };
        let (small, big) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(latency_of(small) <= latency_of(big));
    }

    /// Identical schedules produce identical traces (determinism).
    #[test]
    fn traces_replay_identically(
        sched in proptest::collection::vec((0u64..10_000, 1usize..512), 1..30),
    ) {
        let run = || {
            let mut world = SimBuilder::new(2, NetworkParams::setup2()).build(|_| Pipe);
            for (i, &(at, size)) in sched.iter().enumerate() {
                world.schedule_command(
                    ProcessId::new(0),
                    Time::ZERO + Duration::from_micros(at),
                    SeqMsg { seq: i as u64, size },
                );
            }
            world.run_to_quiescence();
            world.outputs().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    /// The sum of CPU busy time never exceeds elapsed virtual time × n
    /// (no resource can be more than 100% utilized).
    #[test]
    fn utilization_never_exceeds_one(count in 1usize..60) {
        let mut world = SimBuilder::new(2, NetworkParams::setup1()).build(|_| Pipe);
        for i in 0..count {
            world.schedule_command(
                ProcessId::new(0),
                Time::ZERO + Duration::from_micros(i as u64 * 3),
                SeqMsg { seq: i as u64, size: 256 },
            );
        }
        world.run_to_quiescence();
        let horizon = world.now();
        prop_assert!(horizon > Time::ZERO);
        for busy in &world.stats().cpu_busy {
            prop_assert!(busy.as_nanos() <= horizon.as_nanos());
        }
    }
}
