//! Static system configuration.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::process::ProcessId;
use crate::quorum;

/// The static membership of the system: `n` processes `p_0 … p_{n-1}` and the
/// assumed bound `f` on the number of crash failures.
///
/// The paper's algorithms never change membership; all resilience statements
/// (`f < n/2` for CT, `f < n/3` for indirect MR) are with respect to this
/// configuration.
///
/// # Example
///
/// ```
/// use iabc_types::SystemConfig;
/// let cfg = SystemConfig::new(5).unwrap();
/// assert_eq!(cfg.n(), 5);
/// assert_eq!(cfg.majority(), 3);
/// assert_eq!(cfg.max_faults_majority(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    n: usize,
}

impl SystemConfig {
    /// Creates a configuration for `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidSystemSize`] unless `1 ≤ n ≤ 64`.
    pub fn new(n: usize) -> Result<Self, ConfigError> {
        if n == 0 || n > 64 {
            return Err(ConfigError::InvalidSystemSize { n });
        }
        Ok(SystemConfig { n })
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All process ids of the system.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }

    /// `⌈(n+1)/2⌉`, the Chandra–Toueg quorum.
    pub fn majority(&self) -> usize {
        quorum::majority(self.n)
    }

    /// `⌈(2n+1)/3⌉`, the indirect-MR Phase-2 quorum.
    pub fn two_thirds(&self) -> usize {
        quorum::two_thirds(self.n)
    }

    /// `⌈(n+1)/3⌉`, the indirect-MR adoption threshold.
    pub fn one_third(&self) -> usize {
        quorum::one_third(self.n)
    }

    /// Largest `f` with `f < n/2`.
    pub fn max_faults_majority(&self) -> usize {
        quorum::max_faults_majority(self.n)
    }

    /// Largest `f` with `f < n/3`.
    pub fn max_faults_third(&self) -> usize {
        quorum::max_faults_third(self.n)
    }

    /// Validates a fault bound against a quorum requirement.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::FaultBoundTooHigh`] if `f` exceeds `max`.
    pub fn check_fault_bound(&self, f: usize, max: usize) -> Result<(), ConfigError> {
        if f > max {
            return Err(ConfigError::FaultBoundTooHigh { f, max });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(SystemConfig::new(0).is_err());
        assert!(SystemConfig::new(65).is_err());
        assert!(SystemConfig::new(1).is_ok());
        assert!(SystemConfig::new(64).is_ok());
    }

    #[test]
    fn quorums_for_paper_systems() {
        let c3 = SystemConfig::new(3).unwrap();
        assert_eq!((c3.majority(), c3.two_thirds(), c3.one_third()), (2, 3, 2));
        let c5 = SystemConfig::new(5).unwrap();
        assert_eq!((c5.majority(), c5.two_thirds(), c5.one_third()), (3, 4, 2));
    }

    #[test]
    fn fault_bound_check() {
        let c = SystemConfig::new(4).unwrap();
        assert!(c.check_fault_bound(1, c.max_faults_majority()).is_ok());
        assert!(c.check_fault_bound(2, c.max_faults_third()).is_err());
    }

    #[test]
    fn processes_enumerates_all() {
        let c = SystemConfig::new(3).unwrap();
        let ids: Vec<_> = c.processes().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[2], ProcessId::new(2));
    }
}
