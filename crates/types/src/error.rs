//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An error produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a complete value could be read.
    Truncated {
        /// Bytes required by the next field.
        need: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// A discriminant byte had no corresponding variant.
    InvalidTag {
        /// The offending byte.
        tag: u8,
        /// The type being decoded.
        context: &'static str,
    },
    /// `from_bytes` consumed a full value but bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated input: need {need} bytes, have {have}")
            }
            CodecError::InvalidTag { tag, context } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            CodecError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
        }
    }
}

impl Error for CodecError {}

/// An error in a system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The system size is outside the supported range.
    InvalidSystemSize {
        /// Requested number of processes.
        n: usize,
    },
    /// The declared fault bound exceeds what the selected algorithm supports.
    FaultBoundTooHigh {
        /// Requested maximum number of faults.
        f: usize,
        /// Largest supported value for the system size and algorithm.
        max: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidSystemSize { n } => {
                write!(f, "invalid system size {n} (need 1 ≤ n ≤ 64)")
            }
            ConfigError::FaultBoundTooHigh { f: faults, max } => {
                write!(f, "fault bound {faults} exceeds maximum {max} for this algorithm")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_error_messages_are_lowercase_and_informative() {
        let e = CodecError::Truncated { need: 4, have: 1 };
        assert_eq!(e.to_string(), "truncated input: need 4 bytes, have 1");
        let e = CodecError::InvalidTag { tag: 9, context: "bool" };
        assert!(e.to_string().contains("invalid tag 9"));
        let e = CodecError::TrailingBytes { count: 3 };
        assert!(e.to_string().contains("3 trailing bytes"));
    }

    #[test]
    fn config_error_messages() {
        let e = ConfigError::InvalidSystemSize { n: 0 };
        assert!(e.to_string().contains("invalid system size 0"));
        let e = ConfigError::FaultBoundTooHigh { f: 2, max: 1 };
        assert!(e.to_string().contains("fault bound 2"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CodecError>();
        assert_send_sync::<ConfigError>();
    }
}
