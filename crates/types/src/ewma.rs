//! A seed-then-fold exponentially weighted moving average.
//!
//! Three controllers in this workspace smooth a noisy scalar the same way
//! — the pipeline window's congestion baseline, the proposer's flood
//! delay estimate, and the classed server's bulk service quantum — and
//! each needs the same two details handled identically: the first
//! observation *seeds* the average (folding into an implicit zero would
//! bias every early estimate toward zero), and consumers must be able to
//! ignore the estimate until enough observations arrived to trust it.

/// An EWMA over `f64` observations: the first observation seeds the
/// value, later ones fold in with weight `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    obs: u64,
}

impl Ewma {
    /// Creates an empty average with smoothing factor `alpha` (the weight
    /// of the newest observation, in `(0, 1]`).
    pub fn new(alpha: f64) -> Self {
        debug_assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
        Ewma { alpha, value: 0.0, obs: 0 }
    }

    /// Folds one observation in (seeding on the first).
    pub fn observe(&mut self, x: f64) {
        self.value = if self.obs == 0 { x } else { self.alpha * x + (1.0 - self.alpha) * self.value };
        self.obs += 1;
    }

    /// The current estimate (0.0 before any observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Observations folded in so far.
    pub fn obs(&self) -> u64 {
        self.obs
    }

    /// Whether at least `warmup` observations arrived — the usual gate
    /// before a consumer trusts [`Ewma::value`].
    pub fn warmed(&self, warmup: u64) -> bool {
        self.obs >= warmup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds_the_value() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), 0.0);
        assert!(!e.warmed(1));
        e.observe(5.0);
        assert_eq!(e.value(), 5.0, "seed, not 0.1 * 5.0");
        assert_eq!(e.obs(), 1);
        assert!(e.warmed(1));
    }

    #[test]
    fn constant_observations_converge_to_the_constant() {
        let mut e = Ewma::new(0.2);
        for _ in 0..100 {
            e.observe(3.5);
        }
        assert!((e.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn fold_weights_the_newest_observation_by_alpha() {
        let mut e = Ewma::new(0.25);
        e.observe(4.0);
        e.observe(8.0);
        assert!((e.value() - (0.25 * 8.0 + 0.75 * 4.0)).abs() < 1e-12);
        assert!(e.warmed(2) && !e.warmed(3));
    }
}
