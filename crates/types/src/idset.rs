//! Sets of message identifiers — the values on which *indirect consensus*
//! decides.
//!
//! An [`IdSet`] is the `v` of the paper's proposal pair `(v, rcv)`: a set of
//! message identifiers. It is stored as a sorted vector, so iteration order
//! *is* the deterministic order of Algorithm 1 line 20, and set operations
//! are linear merges.

use std::fmt;

use crate::message::MsgId;
use crate::wire::{Decode, Encode, WireSize};
use crate::CodecError;

/// A sorted set of message identifiers.
///
/// # Example
///
/// ```
/// use iabc_types::{IdSet, MsgId, ProcessId};
/// let mut v = IdSet::new();
/// v.insert(MsgId::new(ProcessId::new(1), 0));
/// v.insert(MsgId::new(ProcessId::new(0), 0));
/// // iteration follows the deterministic (sender, seq) order:
/// let order: Vec<_> = v.iter().map(|id| id.sender().index()).collect();
/// assert_eq!(order, vec![0, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IdSet {
    // Sorted, deduplicated.
    ids: Vec<MsgId>,
}

impl IdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IdSet { ids: Vec::new() }
    }

    /// Creates a set from an iterator of ids (sorting and deduplicating).
    pub fn from_ids(iter: impl IntoIterator<Item = MsgId>) -> Self {
        let mut ids: Vec<MsgId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        IdSet { ids }
    }

    /// Inserts an id; returns `true` if it was not already present.
    pub fn insert(&mut self, id: MsgId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes an id; returns `true` if it was present.
    pub fn remove(&mut self, id: MsgId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: MsgId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates ids in the deterministic `(sender, seq)` order.
    pub fn iter(&self) -> impl Iterator<Item = MsgId> + '_ {
        self.ids.iter().copied()
    }

    /// The ids as a sorted slice.
    pub fn as_slice(&self) -> &[MsgId] {
        &self.ids
    }

    /// Removes every id of `other` from `self`
    /// (Algorithm 1 line 19: `unordered ← unordered \ idSet`).
    pub fn subtract(&mut self, other: &IdSet) {
        if other.is_empty() || self.is_empty() {
            return;
        }
        self.ids.retain(|id| !other.contains(*id));
    }

    /// Union of two sets (linear merge).
    pub fn union(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            use std::cmp::Ordering::*;
            match self.ids[i].cmp(&other.ids[j]) {
                Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        IdSet { ids: out }
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ids.iter()).finish()
    }
}

impl FromIterator<MsgId> for IdSet {
    fn from_iter<I: IntoIterator<Item = MsgId>>(iter: I) -> Self {
        IdSet::from_ids(iter)
    }
}

impl Extend<MsgId> for IdSet {
    fn extend<I: IntoIterator<Item = MsgId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a> IntoIterator for &'a IdSet {
    type Item = MsgId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, MsgId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

impl WireSize for IdSet {
    fn wire_size(&self) -> usize {
        4 + self.ids.len() * 10
    }
}

impl Encode for IdSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        crate::wire::encode_len_prefix(self.ids.len(), buf);
        for id in &self.ids {
            id.encode(buf);
        }
    }
}

impl Decode for IdSet {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as usize;
        let mut ids = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            ids.push(MsgId::decode(buf)?);
        }
        // Defensive: a well-formed encoder emits sorted ids, but a decoder
        // must not trust its input to uphold the sortedness invariant.
        ids.sort_unstable();
        ids.dedup();
        Ok(IdSet { ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessId;
    use crate::wire::roundtrip;

    fn id(p: u16, s: u64) -> MsgId {
        MsgId::new(ProcessId::new(p), s)
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut v = IdSet::new();
        assert!(v.insert(id(1, 2)));
        assert!(v.insert(id(0, 7)));
        assert!(v.insert(id(1, 0)));
        assert!(!v.insert(id(1, 2)));
        let got: Vec<_> = v.iter().collect();
        assert_eq!(got, vec![id(0, 7), id(1, 0), id(1, 2)]);
    }

    #[test]
    fn from_ids_dedups() {
        let v = IdSet::from_ids(vec![id(0, 1), id(0, 1), id(0, 0)]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn subtract_removes_members() {
        let mut a = IdSet::from_ids(vec![id(0, 0), id(0, 1), id(1, 0)]);
        let b = IdSet::from_ids(vec![id(0, 1), id(2, 2)]);
        a.subtract(&b);
        assert_eq!(a, IdSet::from_ids(vec![id(0, 0), id(1, 0)]));
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = IdSet::from_ids(vec![id(0, 0), id(1, 0)]);
        let b = IdSet::from_ids(vec![id(0, 0), id(2, 0)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(id(0, 0)) && u.contains(id(1, 0)) && u.contains(id(2, 0)));
    }

    #[test]
    fn remove_and_contains() {
        let mut v = IdSet::from_ids(vec![id(0, 0), id(1, 1)]);
        assert!(v.contains(id(1, 1)));
        assert!(v.remove(id(1, 1)));
        assert!(!v.remove(id(1, 1)));
        assert!(!v.contains(id(1, 1)));
    }

    #[test]
    fn wire_size_is_ten_bytes_per_id_plus_header() {
        let v = IdSet::from_ids((0..5).map(|s| id(0, s)));
        assert_eq!(v.wire_size(), 4 + 50);
    }

    #[test]
    fn codec_roundtrip() {
        let v = IdSet::from_ids((0..100).map(|s| id((s % 7) as u16, s)));
        assert_eq!(roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn decode_sorts_untrusted_input() {
        // Hand-encode out-of-order ids; decode must restore the invariant.
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        id(5, 5).encode(&mut buf);
        id(0, 0).encode(&mut buf);
        let mut slice = buf.as_slice();
        let v = IdSet::decode(&mut slice).unwrap();
        assert_eq!(v.as_slice(), &[id(0, 0), id(5, 5)]);
    }
}
