//! Common vocabulary types for the `indirect-abcast` workspace.
//!
//! This crate defines the process/message identifier types, the virtual time
//! base used by the deterministic simulator, quorum arithmetic for the
//! ◇S algorithms of the paper, and a small byte-accurate wire codec used both
//! to serialize protocol messages on real transports and to compute realistic
//! on-the-wire sizes for the simulated network contention model.
//!
//! # Example
//!
//! ```
//! use iabc_types::{ProcessId, MsgId, IdSet, quorum};
//!
//! let p = ProcessId::new(2);
//! let id = MsgId::new(p, 7);
//! let mut set = IdSet::new();
//! set.insert(id);
//! assert!(set.contains(id));
//! // Chandra-Toueg needs a majority, the indirect MR algorithm two thirds:
//! assert_eq!(quorum::majority(5), 3);
//! assert_eq!(quorum::two_thirds(5), 4);
//! ```

pub mod config;
pub mod error;
pub mod ewma;
pub mod idset;
pub mod message;
pub mod process;
pub mod quorum;
pub mod time;
pub mod wire;

pub use config::SystemConfig;
pub use error::{CodecError, ConfigError};
pub use ewma::Ewma;
pub use idset::IdSet;
pub use message::{AppMessage, MsgId, Payload};
pub use process::{ProcessId, ProcessSet};
pub use time::{Duration, Time};
pub use wire::{Decode, Encode, TrafficClass, WireSize};
