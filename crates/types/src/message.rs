//! Application messages and their unique identifiers.
//!
//! Every message `m` that is a-broadcast carries a globally unique identifier
//! `id(m)` (Algorithm 1, line 4 of the paper). We realize `id(m)` as the pair
//! *(sender, per-sender sequence number)*, which is unique without any
//! coordination and totally ordered — the total order over `MsgId` is used as
//! the deterministic order of Algorithm 1 line 20.

use std::fmt;
use std::sync::Arc;

use crate::process::ProcessId;
use crate::time::Time;
use crate::wire::{Decode, Encode, TrafficClass, WireSize};
use crate::CodecError;

/// Globally unique message identifier: `(sender, per-sender sequence)`.
///
/// The derived lexicographic `Ord` (sender first, then sequence) is the
/// *deterministic order* used to linearize a decided identifier set
/// (Algorithm 1, line 20).
///
/// # Example
///
/// ```
/// use iabc_types::{MsgId, ProcessId};
/// let a = MsgId::new(ProcessId::new(0), 5);
/// let b = MsgId::new(ProcessId::new(1), 1);
/// assert!(a < b); // ordered by sender first
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    sender: ProcessId,
    seq: u64,
}

impl MsgId {
    /// Creates the identifier of the `seq`-th message a-broadcast by `sender`.
    pub const fn new(sender: ProcessId, seq: u64) -> Self {
        MsgId { sender, seq }
    }

    /// The process that a-broadcast the message.
    pub const fn sender(self) -> ProcessId {
        self.sender
    }

    /// The per-sender sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.sender, self.seq)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl WireSize for MsgId {
    fn wire_size(&self) -> usize {
        2 + 8
    }
}

impl Encode for MsgId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.sender.encode(buf);
        self.seq.encode(buf);
    }
}

impl Decode for MsgId {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let sender = ProcessId::decode(buf)?;
        let seq = u64::decode(buf)?;
        Ok(MsgId { sender, seq })
    }
}

/// An application payload.
///
/// Payloads are reference-counted so that the simulator can fan a message out
/// to `n` destinations (and consensus-on-messages can embed whole message
/// sets in its estimates) without copying the bytes; the *wire size* still
/// reports the full payload length so the contention model charges each copy.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Creates a payload from raw bytes.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Self {
        Payload(bytes.into())
    }

    /// Creates an all-zero payload of the given size — the synthetic payloads
    /// used by the paper's symmetric workload (message size is the parameter
    /// swept in Figures 1 and 4–6).
    pub fn zeroed(size: usize) -> Self {
        Payload(vec![0u8; size].into())
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({}B)", self.len())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(v.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload(v.into())
    }
}

impl WireSize for Payload {
    fn wire_size(&self) -> usize {
        4 + self.0.len()
    }

    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Bulk // explicit: payload bytes are dissemination traffic
    }
}

impl Encode for Payload {
    fn encode(&self, buf: &mut Vec<u8>) {
        crate::wire::encode_len_prefix(self.0.len(), buf);
        buf.extend_from_slice(&self.0);
    }
}

impl Decode for Payload {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as usize;
        if buf.len() < len {
            return Err(CodecError::Truncated { need: len, have: buf.len() });
        }
        let (head, rest) = buf.split_at(len);
        let payload = Payload(head.into());
        *buf = rest;
        Ok(payload)
    }
}

/// A full application message: identifier plus payload, stamped with the
/// (virtual) time at which it was a-broadcast.
///
/// The broadcast timestamp travels with the message so that *every* process
/// can compute the paper's latency metric (time from `abroadcast(m)` to its
/// own `adeliver(m)`) locally; it contributes 8 bytes to the wire size, a
/// stand-in for the sequencing headers a real stack would carry.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AppMessage {
    id: MsgId,
    payload: Payload,
    broadcast_at: Time,
}

impl AppMessage {
    /// Creates a message with the given identity and payload.
    pub fn new(id: MsgId, payload: Payload, broadcast_at: Time) -> Self {
        AppMessage { id, payload, broadcast_at }
    }

    /// The unique identifier `id(m)`.
    pub fn id(&self) -> MsgId {
        self.id
    }

    /// The application payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// When the message was a-broadcast (virtual time).
    pub fn broadcast_at(&self) -> Time {
        self.broadcast_at
    }
}

impl fmt::Debug for AppMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AppMessage({:?}, {}B)", self.id, self.payload.len())
    }
}

impl WireSize for AppMessage {
    fn wire_size(&self) -> usize {
        self.id.wire_size() + self.payload.wire_size() + 8
    }

    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Bulk // carries the payload: dissemination traffic
    }
}

impl Encode for AppMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.payload.encode(buf);
        self.broadcast_at.as_nanos().encode(buf);
    }
}

impl Decode for AppMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let id = MsgId::decode(buf)?;
        let payload = Payload::decode(buf)?;
        let at = u64::decode(buf)?;
        Ok(AppMessage { id, payload, broadcast_at: Time::from_nanos(at) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn msg_id_orders_by_sender_then_seq() {
        let a = MsgId::new(ProcessId::new(0), 9);
        let b = MsgId::new(ProcessId::new(1), 0);
        let c = MsgId::new(ProcessId::new(1), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn msg_id_codec_roundtrip() {
        let id = MsgId::new(ProcessId::new(7), 0xDEAD_BEEF);
        assert_eq!(roundtrip(&id).unwrap(), id);
    }

    #[test]
    fn payload_zeroed_has_requested_len() {
        let p = Payload::zeroed(1024);
        assert_eq!(p.len(), 1024);
        assert!(!p.is_empty());
        assert!(Payload::zeroed(0).is_empty());
    }

    #[test]
    fn payload_wire_size_includes_length_prefix() {
        let p = Payload::zeroed(100);
        assert_eq!(p.wire_size(), 104);
        assert_eq!(roundtrip(&p).unwrap(), p);
    }

    #[test]
    fn payload_clone_shares_bytes() {
        let p = Payload::zeroed(1 << 20);
        let q = p.clone();
        assert_eq!(p.bytes().as_ptr(), q.bytes().as_ptr());
    }

    #[test]
    fn app_message_roundtrip_preserves_timestamp() {
        let m = AppMessage::new(
            MsgId::new(ProcessId::new(2), 3),
            Payload::from(vec![1, 2, 3]),
            Time::from_nanos(42),
        );
        let back = roundtrip(&m).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.broadcast_at(), Time::from_nanos(42));
    }

    #[test]
    fn truncated_payload_decode_fails() {
        let p = Payload::zeroed(16);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        buf.truncate(10);
        let mut slice = buf.as_slice();
        assert!(Payload::decode(&mut slice).is_err());
    }
}
