//! Process identifiers and small process sets.
//!
//! The paper considers a static system `Π = {p1, …, pn}`. Processes are
//! addressed by dense indices `0..n`, wrapped in [`ProcessId`] for type
//! safety (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::wire::{Decode, Encode, WireSize};
use crate::CodecError;

/// Identifier of a process in the static system `Π = {p_0, …, p_{n-1}}`.
///
/// Process ids are dense indices assigned at configuration time; they are
/// `Copy` and cheap to pass around. The coordinator of round `r` in the
/// rotating-coordinator algorithms is `ProcessId::coordinator_of_round(r, n)`.
///
/// # Example
///
/// ```
/// use iabc_types::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u16);

impl ProcessId {
    /// Creates a process id from its dense index.
    pub const fn new(index: u16) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index as a `usize`, for direct use in slices.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The rotating coordinator of round `r` (rounds start at 1) in a system
    /// of `n` processes.
    ///
    /// This mirrors `c_p ← (r_p mod n) + 1` from Algorithms 2 and 3 of the
    /// paper, translated to 0-based indices: round 1 is coordinated by `p_1`,
    /// round `n` by `p_0`, matching the paper's 1-based `(r mod n) + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `r == 0` (rounds are 1-based).
    pub fn coordinator_of_round(r: u64, n: usize) -> Self {
        assert!(n > 0, "system must have at least one process");
        assert!(r > 0, "rounds are 1-based");
        ProcessId((r % n as u64) as u16)
    }

    /// Iterator over all process ids of a system of size `n`. Ids are
    /// `u16` on the wire, so `n` saturates at `u16::MAX + 1` processes —
    /// far past any configuration the transports accept.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..u16::try_from(n).unwrap_or(u16::MAX)).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(v: u16) -> Self {
        ProcessId(v)
    }
}

impl WireSize for ProcessId {
    fn wire_size(&self) -> usize {
        2
    }
}

impl Encode for ProcessId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for ProcessId {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(ProcessId(u16::decode(buf)?))
    }
}

/// A compact set of processes, backed by a 64-bit bitmap.
///
/// Suitable for the small "ordering kernel" systems the paper evaluates
/// (n ≤ 64); the constructor enforces this bound.
///
/// # Example
///
/// ```
/// use iabc_types::{ProcessId, ProcessSet};
/// let mut s = ProcessSet::new();
/// s.insert(ProcessId::new(0));
/// s.insert(ProcessId::new(2));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId::new(2)));
/// assert!(!s.contains(ProcessId::new(1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProcessSet(u64);

impl ProcessSet {
    /// Creates an empty process set.
    pub const fn new() -> Self {
        ProcessSet(0)
    }

    /// Creates a set containing all processes of a system of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn full(n: usize) -> Self {
        assert!(n <= 64, "ProcessSet supports at most 64 processes");
        if n == 64 {
            ProcessSet(u64::MAX)
        } else {
            ProcessSet((1u64 << n) - 1)
        }
    }

    /// Inserts a process; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the process index is ≥ 64.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(p.as_usize() < 64, "ProcessSet supports at most 64 processes");
        let bit = 1u64 << p.as_usize();
        let was = self.0 & bit != 0;
        self.0 |= bit;
        !was
    }

    /// Removes a process; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.as_usize() >= 64 {
            return false;
        }
        let bit = 1u64 << p.as_usize();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: ProcessId) -> bool {
        p.as_usize() < 64 && self.0 & (1u64 << p.as_usize()) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let bits = self.0;
        (0..64u16).filter(move |i| bits & (1u64 << i) != 0).map(ProcessId)
    }

    /// Set union.
    pub fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet(self.0 & !other.0)
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_rotates_through_all_processes() {
        let n = 3;
        let coords: Vec<_> = (1..=6).map(|r| ProcessId::coordinator_of_round(r, n)).collect();
        assert_eq!(
            coords,
            vec![
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(0),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "rounds are 1-based")]
    fn coordinator_of_round_zero_panics() {
        let _ = ProcessId::coordinator_of_round(0, 3);
    }

    #[test]
    fn process_set_basic_operations() {
        let mut s = ProcessSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ProcessId::new(5)));
        assert!(!s.insert(ProcessId::new(5)));
        assert!(s.contains(ProcessId::new(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(ProcessId::new(5)));
        assert!(!s.remove(ProcessId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn process_set_full_and_iter() {
        let s = ProcessSet::full(5);
        assert_eq!(s.len(), 5);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, ProcessId::all(5).collect::<Vec<_>>());
    }

    #[test]
    fn process_set_full_64() {
        let s = ProcessSet::full(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(ProcessId::new(63)));
    }

    #[test]
    fn process_set_algebra() {
        let a: ProcessSet = [0u16, 1, 2].into_iter().map(ProcessId::new).collect();
        let b: ProcessSet = [2u16, 3].into_iter().map(ProcessId::new).collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(ProcessId::new(2)));
        assert_eq!(a.difference(b).len(), 2);
        assert!(!a.difference(b).contains(ProcessId::new(2)));
    }

    #[test]
    fn process_id_roundtrips_through_codec() {
        let p = ProcessId::new(513);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), p.wire_size());
        let mut slice = buf.as_slice();
        assert_eq!(ProcessId::decode(&mut slice).unwrap(), p);
        assert!(slice.is_empty());
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", ProcessId::new(1)), "p1");
        assert_eq!(format!("{:?}", ProcessSet::new()), "{}");
    }
}
