//! Quorum arithmetic for the ◇S algorithms.
//!
//! The paper's algorithms wait for specific quorum sizes:
//!
//! * Chandra–Toueg (original and indirect): `⌈(n+1)/2⌉` estimates / acks,
//!   tolerating `f < n/2` crashes.
//! * Mostéfaoui–Raynal (original): a majority, `f < n/2`.
//! * Mostéfaoui–Raynal **indirect** (Algorithm 3): `⌈(2n+1)/3⌉` Phase-2
//!   echoes and an adoption threshold of `⌈(n+1)/3⌉`, tolerating only
//!   `f < n/3` — the resilience loss that is one of the paper's findings.
//!
//! The intersection argument of Figure 2 (two `n−f` quorums intersect in at
//! least `n−2f` processes, so `n−2f ≥ f+1 ⇔ f < n/3` guarantees `f+1`
//! common echoes) is captured by [`min_quorum_intersection`] and tested
//! property-style.

/// `⌈(n+1)/2⌉` — the majority quorum used by Chandra–Toueg.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn majority(n: usize) -> usize {
    assert!(n > 0, "system must have at least one process");
    n / 2 + 1
}

/// `⌈(2n+1)/3⌉` — the Phase-2 quorum of the indirect MR algorithm
/// (Algorithm 3, line 22).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn two_thirds(n: usize) -> usize {
    assert!(n > 0, "system must have at least one process");
    (2 * n + 1).div_ceil(3)
}

/// `⌈(n+1)/3⌉` — the adoption threshold of the indirect MR algorithm
/// (Algorithm 3, line 28): receiving `v` this many times proves a correct
/// process holds `msgs(v)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn one_third(n: usize) -> usize {
    assert!(n > 0, "system must have at least one process");
    (n + 1).div_ceil(3)
}

/// Maximum number of crash failures tolerated under a majority requirement
/// (`f < n/2`).
pub fn max_faults_majority(n: usize) -> usize {
    n.saturating_sub(1) / 2
}

/// Maximum number of crash failures tolerated under the indirect-MR
/// requirement (`f < n/3`).
pub fn max_faults_third(n: usize) -> usize {
    n.saturating_sub(1) / 3
}

/// Minimum size of the intersection of two quorums of size `q` out of `n`
/// processes: `max(0, 2q − n)`.
///
/// With `q = n − f` this is the paper's `n − 2f` (Figure 2).
pub fn min_quorum_intersection(n: usize, q: usize) -> usize {
    (2 * q).saturating_sub(n)
}

/// Whether `f` failures are survivable by an algorithm that needs any two
/// `(n−f)`-quorums to intersect in at least `f+1` processes — the condition
/// `n − 2f ≥ f + 1` of §3.3.3, equivalent to `f < n/3`.
pub fn intersection_covers_correct_witness(n: usize, f: usize) -> bool {
    min_quorum_intersection(n, n - f) > f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_matches_paper_examples() {
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(7), 4);
    }

    #[test]
    fn two_thirds_matches_ceil_formula() {
        // ⌈(2n+1)/3⌉ spot checks.
        assert_eq!(two_thirds(3), 3); // ⌈7/3⌉
        assert_eq!(two_thirds(4), 3); // ⌈9/3⌉
        assert_eq!(two_thirds(5), 4); // ⌈11/3⌉
        assert_eq!(two_thirds(7), 5); // ⌈15/3⌉
    }

    #[test]
    fn one_third_matches_ceil_formula() {
        assert_eq!(one_third(3), 2); // ⌈4/3⌉
        assert_eq!(one_third(4), 2);
        assert_eq!(one_third(7), 3); // ⌈8/3⌉
    }

    #[test]
    fn max_faults() {
        assert_eq!(max_faults_majority(3), 1);
        assert_eq!(max_faults_majority(5), 2);
        assert_eq!(max_faults_third(3), 0);
        assert_eq!(max_faults_third(4), 1);
        assert_eq!(max_faults_third(7), 2);
    }

    #[test]
    fn figure_2_example() {
        // n = 7, f = 2: quorums of size 5 intersect in at least 3 = n − 2f
        // processes, and 3 ≥ f + 1, so the adoption rule is sound.
        assert_eq!(min_quorum_intersection(7, 5), 3);
        assert!(intersection_covers_correct_witness(7, 2));
        // f = 3 would break it (f < n/3 fails).
        assert!(!intersection_covers_correct_witness(7, 3));
    }

    #[test]
    fn two_majorities_always_intersect() {
        for n in 1..100 {
            assert!(min_quorum_intersection(n, majority(n)) >= 1, "n={n}");
        }
    }

    #[test]
    fn indirect_mr_condition_is_exactly_f_lt_n_over_3() {
        for n in 1..200usize {
            for f in 0..n {
                let lhs = intersection_covers_correct_witness(n, f);
                let rhs = 3 * f < n;
                assert_eq!(lhs, rhs, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn quorums_fit_in_system() {
        for n in 1..100 {
            assert!(majority(n) <= n);
            assert!(two_thirds(n) <= n);
            assert!(one_third(n) <= n);
        }
    }
}
