//! Virtual time for the deterministic simulator.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! run. Using integers (not floats) keeps event ordering exact and runs
//! reproducible. [`Duration`] is a thin wrapper with the usual arithmetic;
//! conversions to and from [`std::time::Duration`] are provided for the real
//! network runtimes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of (virtual) time, in nanoseconds.
///
/// # Example
///
/// ```
/// use iabc_types::Duration;
/// let d = Duration::from_micros(150) + Duration::from_micros(50);
/// assert_eq!(d.as_millis_f64(), 0.2);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds,
    /// rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "duration too large: {secs}s");
        Duration(ns.round() as u64)
    }

    /// Duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds (float).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in milliseconds (float).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in seconds (float).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        // Explicit saturation at u64::MAX nanoseconds (~584 years). A bare
        // float→int `as` would saturate too, but silently; this spells the
        // bound out.
        let scaled = (self.0 as f64 * factor).round();
        if scaled >= u64::MAX as f64 {
            Duration(u64::MAX)
        } else {
            Duration(scaled as u64)
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Duration(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl From<Duration> for std::time::Duration {
    fn from(d: Duration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

/// An instant on the virtual time line (nanoseconds since run start).
///
/// # Example
///
/// ```
/// use iabc_types::{Duration, Time};
/// let t = Time::ZERO + Duration::from_millis(5);
/// assert_eq!(t.elapsed_since(Time::ZERO), Duration::from_millis(5));
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The start of the run.
    pub const ZERO: Time = Time(0);

    /// Creates a time from nanoseconds since run start.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start (float).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is later than `self`.
    pub fn elapsed_since(self, earlier: Time) -> Duration {
        debug_assert!(earlier.0 <= self.0, "elapsed_since: earlier ({earlier:?}) > self ({self:?})");
        Duration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_micros(10);
        let b = Duration::from_micros(4);
        assert_eq!(a + b, Duration::from_micros(14));
        assert_eq!(a - b, Duration::from_micros(6));
        assert_eq!(a * 3, Duration::from_micros(30));
        assert_eq!(a / 2, Duration::from_micros(5));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
    }

    #[test]
    fn duration_float_conversions() {
        let d = Duration::from_secs_f64(0.0015);
        assert_eq!(d, Duration::from_micros(1500));
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-12);
        assert_eq!(d.mul_f64(2.0), Duration::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        let t0 = Time::ZERO;
        let t1 = t0 + Duration::from_millis(3);
        assert!(t1 > t0);
        assert_eq!(t1.elapsed_since(t0), Duration::from_millis(3));
        assert_eq!(t1 - Duration::from_millis(3), t0);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn std_duration_roundtrip() {
        let d = Duration::from_micros(1234);
        let std: std::time::Duration = d.into();
        let back: Duration = std.into();
        assert_eq!(d, back);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_micros).sum();
        assert_eq!(total, Duration::from_micros(10));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{:?}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{:?}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{:?}", Time::ZERO), "t=0.000000s");
    }
}
