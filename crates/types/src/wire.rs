//! A small, explicit wire codec.
//!
//! The codec serves two purposes:
//!
//! 1. **Real transports** (`iabc-net`) serialize protocol envelopes with
//!    [`Encode`]/[`Decode`].
//! 2. **The simulator** never serializes — it moves values — but it charges
//!    the network model with [`WireSize::wire_size`], which is defined to be
//!    *exactly* the number of bytes [`Encode`] produces (an invariant the
//!    test-suite checks for every message type via [`check_size_invariant`]).
//!
//! Keeping sizes honest matters: the paper's entire argument is about how
//! many bytes consensus puts on the wire (full messages vs. 10-byte ids).
//!
//! All integers are encoded little-endian, fixed-width.

use crate::error::CodecError;

/// The service class of a wire message, the unit of two-class traffic
/// scheduling.
///
/// Under overload the dominant cost of this stack is the reliable-broadcast
/// payload flood queueing in front of the small consensus/failure-detector
/// frames on every FIFO server (CPU, NIC, socket writer). Tagging each
/// message with a class lets those servers run a priority lane: `Ordering`
/// frames are served ahead of `Bulk` backlog, so a consensus hop no longer
/// pays the full ingest queue (the Ring Paxos separation of coordination
/// from dissemination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrafficClass {
    /// Small coordination traffic: consensus and failure-detector frames.
    Ordering,
    /// Payload dissemination: reliable-broadcast data/relay/echo frames.
    ///
    /// The default for untagged messages — misclassifying coordination
    /// traffic as `Bulk` only loses the priority, never starves payloads.
    #[default]
    Bulk,
}

impl TrafficClass {
    /// Dense index (`Ordering = 0`, `Bulk = 1`) for per-class stat arrays.
    pub const fn index(self) -> usize {
        match self {
            TrafficClass::Ordering => 0,
            TrafficClass::Bulk => 1,
        }
    }
}

/// Number of bytes a value occupies when encoded.
///
/// Implementations must satisfy `encode(v).len() == v.wire_size()`;
/// [`check_size_invariant`] asserts this in tests.
pub trait WireSize {
    /// Exact encoded size in bytes.
    fn wire_size(&self) -> usize;

    /// The service class of this message for two-class traffic scheduling.
    ///
    /// Defaults to [`TrafficClass::Bulk`] — the conservative choice: an
    /// untagged message never jumps ahead of payload traffic. Protocol
    /// frame types override this (consensus and failure-detector messages
    /// are [`TrafficClass::Ordering`]).
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Bulk
    }
}

/// Serialize a value into a byte buffer.
pub trait Encode: WireSize {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        self.encode(&mut buf);
        buf
    }
}

/// Deserialize a value from a byte slice, advancing the slice.
pub trait Decode: Sized {
    /// Decodes a value from the front of `buf`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or contains an
    /// invalid encoding.
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;

    /// Convenience: decode from a complete buffer, requiring that every byte
    /// is consumed.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if the buffer is longer than
    /// one encoded value, or any error from [`Decode::decode`].
    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let v = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(CodecError::TrailingBytes { count: buf.len() });
        }
        Ok(v)
    }

    /// Decodes one complete frame body whose bytes live in a
    /// **transport-owned receive buffer** that is reused (overwritten) as
    /// soon as this call returns.
    ///
    /// This is the borrowing entry point of the zero-copy receive path:
    /// the transport hands the frame bytes to the decoder *in place* —
    /// sliced straight out of the pooled socket buffer, with no
    /// intermediate re-assembly copy. The contract for implementations:
    ///
    /// * the input slice is only valid for the duration of the call —
    ///   anything the decoded value keeps must be copied out;
    /// * bulk fields (payload bytes) should be copied **at most once**,
    ///   directly into their long-lived store (e.g. `Payload`'s
    ///   `Arc<[u8]>`), never via a temporary.
    ///
    /// The default delegates to [`Decode::from_bytes`], which already
    /// satisfies the contract for every type in this workspace: `decode`
    /// borrows from the slice and copies each owned field exactly once.
    /// Override only to exploit frame-level knowledge (e.g. skipping a
    /// redundant length check).
    ///
    /// # Errors
    ///
    /// Same as [`Decode::from_bytes`]: truncated or invalid encodings and
    /// trailing bytes.
    fn decode_in_place(frame: &[u8]) -> Result<Self, CodecError> {
        Self::from_bytes(frame)
    }
}

macro_rules! impl_codec_for_int {
    ($($ty:ty),*) => {
        $(
            impl WireSize for $ty {
                fn wire_size(&self) -> usize {
                    std::mem::size_of::<$ty>()
                }
            }
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl Decode for $ty {
                fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
                    const N: usize = std::mem::size_of::<$ty>();
                    if buf.len() < N {
                        return Err(CodecError::Truncated { need: N, have: buf.len() });
                    }
                    let (head, rest) = buf.split_at(N);
                    *buf = rest;
                    match head.try_into() {
                        Ok(bytes) => Ok(<$ty>::from_le_bytes(bytes)),
                        Err(_) => Err(CodecError::Truncated { need: N, have: head.len() }),
                    }
                }
            }
        )*
    };
}

impl_codec_for_int!(u8, u16, u32, u64);

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidTag { tag: other, context: "bool" }),
        }
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode + WireSize> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(CodecError::InvalidTag { tag: other, context: "Option" }),
        }
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// Encodes a container length as the canonical 4-byte little-endian wire
/// prefix without a truncating cast. Saturates at `u32::MAX`: a length
/// that large cannot reach the wire anyway (the frame writer rejects
/// bodies over `MAX_FRAME`, 16 MiB), so saturation is unobservable — but
/// unlike `as u32` it is explicit and total.
pub(crate) fn encode_len_prefix(len: usize, buf: &mut Vec<u8>) {
    u32::try_from(len).unwrap_or(u32::MAX).encode(buf);
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len_prefix(self.len(), buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode + WireSize> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(buf)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

/// Test helper: encode then decode a value, checking the
/// `wire_size == encoded length` invariant on the way.
///
/// # Errors
///
/// Propagates any decode error.
///
/// # Panics
///
/// Panics if the encoded length differs from `wire_size()`.
pub fn roundtrip<T: Encode + Decode>(value: &T) -> Result<T, CodecError> {
    let bytes = value.to_bytes();
    assert_eq!(
        bytes.len(),
        value.wire_size(),
        "wire_size invariant violated: encoded {} bytes but wire_size() = {}",
        bytes.len(),
        value.wire_size()
    );
    T::from_bytes(&bytes)
}

/// Asserts the `wire_size == encoded length` invariant for a value.
///
/// # Panics
///
/// Panics if the invariant does not hold.
pub fn check_size_invariant<T: Encode>(value: &T) {
    let bytes = value.to_bytes();
    assert_eq!(
        bytes.len(),
        value.wire_size(),
        "wire_size invariant violated: encoded {} bytes but wire_size() = {}",
        bytes.len(),
        value.wire_size()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_messages_default_to_bulk() {
        // The conservative default: a type that only implements
        // `wire_size` never jumps the priority lane.
        assert_eq!(7u32.traffic_class(), TrafficClass::Bulk);
        assert_eq!(vec![1u8, 2].traffic_class(), TrafficClass::Bulk);
        assert_eq!(TrafficClass::default(), TrafficClass::Bulk);
        assert_eq!(TrafficClass::Ordering.index(), 0);
        assert_eq!(TrafficClass::Bulk.index(), 1);
    }

    #[test]
    fn integer_roundtrips() {
        assert_eq!(roundtrip(&0xABu8).unwrap(), 0xAB);
        assert_eq!(roundtrip(&0xABCDu16).unwrap(), 0xABCD);
        assert_eq!(roundtrip(&0xABCD_EF01u32).unwrap(), 0xABCD_EF01);
        assert_eq!(roundtrip(&u64::MAX).unwrap(), u64::MAX);
    }

    #[test]
    fn bool_roundtrips_and_rejects_garbage() {
        assert!(roundtrip(&true).unwrap());
        assert!(!roundtrip(&false).unwrap());
        let mut bad: &[u8] = &[7];
        assert!(matches!(bool::decode(&mut bad), Err(CodecError::InvalidTag { .. })));
    }

    #[test]
    fn option_roundtrips() {
        assert_eq!(roundtrip(&Some(5u32)).unwrap(), Some(5));
        assert_eq!(roundtrip(&None::<u32>).unwrap(), None);
    }

    #[test]
    fn vec_roundtrips() {
        let v: Vec<u16> = (0..100).collect();
        assert_eq!(roundtrip(&v).unwrap(), v);
        let empty: Vec<u16> = vec![];
        assert_eq!(roundtrip(&empty).unwrap(), empty);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf: &[u8] = &[1, 2];
        assert!(matches!(
            u32::decode(&mut buf),
            Err(CodecError::Truncated { need: 4, have: 2 })
        ));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut bytes = 5u16.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u16::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(0x0102u16.to_bytes(), vec![0x02, 0x01]);
    }
}
