//! Property-based tests for the vocabulary types.

use iabc_types::wire::roundtrip;
use iabc_types::{quorum, Duration, IdSet, MsgId, Payload, ProcessId, ProcessSet, Time};
use proptest::prelude::*;

fn arb_msg_id() -> impl Strategy<Value = MsgId> {
    (0u16..64, 0u64..10_000).prop_map(|(p, s)| MsgId::new(ProcessId::new(p), s))
}

proptest! {
    #[test]
    fn msg_id_codec_roundtrip(id in arb_msg_id()) {
        prop_assert_eq!(roundtrip(&id).unwrap(), id);
    }

    #[test]
    fn idset_from_ids_is_sorted_dedup(ids in proptest::collection::vec(arb_msg_id(), 0..200)) {
        let set = IdSet::from_ids(ids.clone());
        let slice = set.as_slice();
        for w in slice.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly sorted: {:?}", slice);
        }
        for id in &ids {
            prop_assert!(set.contains(*id));
        }
    }

    #[test]
    fn idset_codec_roundtrip(ids in proptest::collection::vec(arb_msg_id(), 0..200)) {
        let set = IdSet::from_ids(ids);
        prop_assert_eq!(roundtrip(&set).unwrap(), set);
    }

    #[test]
    fn idset_union_is_commutative_and_contains_both(
        a in proptest::collection::vec(arb_msg_id(), 0..100),
        b in proptest::collection::vec(arb_msg_id(), 0..100),
    ) {
        let sa = IdSet::from_ids(a.clone());
        let sb = IdSet::from_ids(b.clone());
        let u1 = sa.union(&sb);
        let u2 = sb.union(&sa);
        prop_assert_eq!(&u1, &u2);
        for id in a.iter().chain(b.iter()) {
            prop_assert!(u1.contains(*id));
        }
    }

    #[test]
    fn idset_subtract_removes_exactly_members(
        a in proptest::collection::vec(arb_msg_id(), 0..100),
        b in proptest::collection::vec(arb_msg_id(), 0..100),
    ) {
        let mut sa = IdSet::from_ids(a.clone());
        let sb = IdSet::from_ids(b);
        sa.subtract(&sb);
        for id in sa.iter() {
            prop_assert!(!sb.contains(id));
        }
        for id in a {
            prop_assert_eq!(sa.contains(id), !sb.contains(id));
        }
    }

    #[test]
    fn payload_codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let p = Payload::from(data);
        prop_assert_eq!(roundtrip(&p).unwrap(), p);
    }

    #[test]
    fn process_set_mirrors_btreeset(ops in proptest::collection::vec((0u16..64, any::<bool>()), 0..200)) {
        let mut ps = ProcessSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for (idx, insert) in ops {
            let p = ProcessId::new(idx);
            if insert {
                prop_assert_eq!(ps.insert(p), reference.insert(p));
            } else {
                prop_assert_eq!(ps.remove(p), reference.remove(&p));
            }
        }
        prop_assert_eq!(ps.len(), reference.len());
        prop_assert_eq!(ps.iter().collect::<Vec<_>>(), reference.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn quorum_identities(n in 1usize..200) {
        // Any two CT majorities intersect.
        prop_assert!(quorum::min_quorum_intersection(n, quorum::majority(n)) >= 1);
        // The max tolerated faults really satisfy the strict bounds.
        prop_assert!(2 * quorum::max_faults_majority(n) < n);
        prop_assert!(3 * quorum::max_faults_third(n) < n);
        // And one more fault would break them.
        prop_assert!(2 * (quorum::max_faults_majority(n) + 1) >= n);
        prop_assert!(3 * (quorum::max_faults_third(n) + 1) >= n);
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
        let t = Time::from_nanos(a);
        let dur = Duration::from_nanos(d);
        let t2 = t + dur;
        prop_assert_eq!(t2.elapsed_since(t), dur);
        prop_assert_eq!(t2 - dur, t);
    }
}
