//! Queue-depth-driven batch coalescing: the adaptive `B`.
//!
//! The fixed client batch `B` trades delivery latency for goodput at a
//! knob the operator must pick per load: `B = 1` collapses at the
//! saturation knee while `B = 16` sails through it, but a large static
//! `B` taxes every payload with coalescing delay even when the system is
//! idle. [`BatchCoalescer`] picks the trade per *tick* instead — AIMD,
//! like the pipeline window controller, but pointed the other way:
//!
//! * **Additive increase** while the a-deliver backlog *rises*: a growing
//!   backlog means per-broadcast overheads (one RB flood, one proposal
//!   slot per tick) are what saturates the hosts, so amortize more
//!   payloads per tick, up to `max`.
//! * **Multiplicative decrease** when the backlog *drains to empty*: the
//!   system is keeping up, so halve toward `min` and give payloads their
//!   low-latency singleton ticks back.
//! * A backlog that is falling but nonzero leaves the batch alone —
//!   the current size is evidently working; reacting to every wiggle
//!   would thrash between the two regimes.
//!
//! Everything is driven by observations the experiment runner feeds once
//! per payload arrival, so a run's coalescing decisions are a pure
//! function of the workload seed — deterministic and replayable.

/// AIMD controller for the per-tick client batch size.
///
/// See the [module docs](self) for the discipline. Bounds are clamped to
/// `1 ≤ min ≤ max` at construction; [`BatchCoalescer::current`] never
/// leaves `[min, max]`.
#[derive(Debug, Clone)]
pub struct BatchCoalescer {
    min: usize,
    max: usize,
    cur: usize,
    last_backlog: usize,
    grows: u64,
    shrinks: u64,
}

impl BatchCoalescer {
    /// Creates a coalescer bounded by `[min, max]` (clamped to
    /// `1 ≤ min ≤ max`), starting at `min`.
    pub fn new(min: usize, max: usize) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        BatchCoalescer { min, max, cur: min, last_backlog: 0, grows: 0, shrinks: 0 }
    }

    /// The batch size a flush should currently target.
    pub fn current(&self) -> usize {
        self.cur
    }

    /// `(min, max)`.
    pub fn bounds(&self) -> (usize, usize) {
        (self.min, self.max)
    }

    /// `(additive increases, multiplicative decreases)` so far.
    pub fn adaptations(&self) -> (u64, u64) {
        (self.grows, self.shrinks)
    }

    /// Feeds one backlog observation (the target process's a-deliver
    /// backlog at a payload arrival) and adapts the batch size.
    pub fn observe(&mut self, backlog: usize) {
        if backlog > self.last_backlog {
            if self.cur < self.max {
                self.cur += 1;
                self.grows += 1;
            }
        } else if backlog == 0 && self.cur > self.min {
            self.cur = (self.cur / 2).max(self.min);
            self.shrinks += 1;
        }
        self.last_backlog = backlog;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_clamped_and_start_at_min() {
        let c = BatchCoalescer::new(0, 0);
        assert_eq!(c.bounds(), (1, 1));
        assert_eq!(c.current(), 1);
        let c = BatchCoalescer::new(8, 2);
        assert_eq!(c.bounds(), (8, 8), "max below min collapses to min");
        let c = BatchCoalescer::new(2, 16);
        assert_eq!(c.current(), 2, "starts at min");
    }

    #[test]
    fn rising_backlog_grows_additively_to_max() {
        let mut c = BatchCoalescer::new(1, 8);
        for b in 1..100usize {
            c.observe(b);
            assert!((1..=8).contains(&c.current()), "left bounds at backlog {b}");
        }
        assert_eq!(c.current(), 8, "sustained rise must reach max");
        assert_eq!(c.adaptations().0, 7);
    }

    #[test]
    fn drain_halves_and_steady_nonzero_backlog_holds() {
        let mut c = BatchCoalescer::new(1, 16);
        for b in 1..=20usize {
            c.observe(b);
        }
        assert_eq!(c.current(), 16);
        // Falling but nonzero: no thrash.
        for b in (5..20usize).rev() {
            c.observe(b);
            assert_eq!(c.current(), 16, "falling-but-nonzero backlog must hold");
        }
        // Drained: halve per observation down to min.
        c.observe(0);
        assert_eq!(c.current(), 8);
        c.observe(0);
        assert_eq!(c.current(), 4);
        c.observe(0);
        c.observe(0);
        c.observe(0);
        assert_eq!(c.current(), 1, "floor is min");
        assert!(c.adaptations().1 >= 4);
    }

    #[test]
    fn identical_observation_sequences_adapt_identically() {
        let seq: Vec<usize> =
            (0..500u64).map(|i| (i.wrapping_mul(0x9E37_79B9).rotate_left(9) % 64) as usize).collect();
        let run = |obs: &[usize]| {
            let mut c = BatchCoalescer::new(1, 16);
            obs.iter().map(|&b| {
                c.observe(b);
                c.current()
            }).collect::<Vec<_>>()
        };
        assert_eq!(run(&seq), run(&seq));
    }
}
