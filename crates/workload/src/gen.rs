//! Arrival-time generation for the symmetric workload.

use iabc_types::{Duration, ProcessId, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a-broadcast arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Exponential inter-arrival times (memoryless open-loop load) — the
    /// default, matching a "global rate" workload.
    Poisson,
    /// Fixed inter-arrival times, phase-staggered across processes.
    Uniform,
}

/// Generates the a-broadcast instants for `process`, at `rate_per_proc`
/// messages/second over `[0, duration)`.
///
/// Deterministic in `(seed, process)`: the same arguments always produce
/// the same schedule, keeping whole experiments reproducible.
///
/// # Panics
///
/// Panics if `rate_per_proc` is not finite and positive.
pub fn arrival_schedule(
    kind: ArrivalKind,
    rate_per_proc: f64,
    duration: Duration,
    seed: u64,
    process: ProcessId,
) -> Vec<Time> {
    assert!(
        rate_per_proc.is_finite() && rate_per_proc > 0.0,
        "rate must be positive, got {rate_per_proc}"
    );
    let horizon = duration.as_secs_f64();
    let mut out = Vec::with_capacity((rate_per_proc * horizon) as usize + 4);
    match kind {
        ArrivalKind::Poisson => {
            // Distinct stream per process, decorrelated from the seed by a
            // splitmix-style scramble.
            let stream = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(process.index() as u64 + 1));
            let mut rng = SmallRng::seed_from_u64(stream);
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / rate_per_proc;
                if t >= horizon {
                    break;
                }
                // from_secs_f64 rounds to the nearest nanosecond; keep the
                // rounded instant strictly inside the horizon.
                let d = Duration::from_secs_f64(t);
                if d < duration {
                    out.push(Time::ZERO + d);
                }
            }
        }
        ArrivalKind::Uniform => {
            let interval = 1.0 / rate_per_proc;
            // Stagger phases so processes do not broadcast in lockstep.
            let phase = interval * (process.index() as f64 * 0.618_034) % interval;
            let mut t = phase;
            while t < horizon {
                let d = Duration::from_secs_f64(t);
                if d < duration {
                    out.push(Time::ZERO + d);
                }
                t += interval;
            }
        }
    }
    out
}

/// Coalesces an arrival schedule into broadcast *ticks* of up to
/// `max_batch` payloads each — the client-side batching knob `B`.
///
/// Consecutive arrivals are grouped in order; each group becomes one tick
/// at the group's **last** arrival instant (a payload is never broadcast
/// before it arrived, so the open-loop causality of the schedule is
/// preserved — early payloads of a group simply wait for the batch to
/// fill). Returns `(tick instant, payload count)` pairs; counts are
/// `max_batch` for every group except possibly the last.
///
/// `max_batch = 1` degenerates to one tick per arrival.
///
/// # Panics
///
/// Panics if `max_batch` is zero.
pub fn batched_schedule(
    kind: ArrivalKind,
    rate_per_proc: f64,
    duration: Duration,
    seed: u64,
    process: ProcessId,
    max_batch: usize,
) -> Vec<(Time, u32)> {
    assert!(max_batch >= 1, "batch size must be at least 1");
    let arrivals = arrival_schedule(kind, rate_per_proc, duration, seed, process);
    arrivals
        .chunks(max_batch)
        .map(|chunk| (*chunk.last().expect("chunks are non-empty"), chunk.len() as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn poisson_rate_is_approximately_right() {
        let dur = Duration::from_secs(100);
        let arr = arrival_schedule(ArrivalKind::Poisson, 50.0, dur, 42, p(0));
        // 5000 expected; Poisson stddev ≈ 71. Allow ±5σ.
        assert!((4650..=5350).contains(&arr.len()), "got {}", arr.len());
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_process() {
        let dur = Duration::from_secs(10);
        let a = arrival_schedule(ArrivalKind::Poisson, 100.0, dur, 7, p(1));
        let b = arrival_schedule(ArrivalKind::Poisson, 100.0, dur, 7, p(1));
        assert_eq!(a, b);
        let c = arrival_schedule(ArrivalKind::Poisson, 100.0, dur, 8, p(1));
        assert_ne!(a, c, "different seeds must differ");
        let d = arrival_schedule(ArrivalKind::Poisson, 100.0, dur, 7, p(2));
        assert_ne!(a, d, "different processes must differ");
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let dur = Duration::from_secs(5);
        for kind in [ArrivalKind::Poisson, ArrivalKind::Uniform] {
            let arr = arrival_schedule(kind, 200.0, dur, 3, p(0));
            assert!(arr.windows(2).all(|w| w[0] <= w[1]));
            assert!(arr.iter().all(|&t| t < Time::ZERO + dur));
        }
    }

    #[test]
    fn uniform_spacing_is_exact() {
        let dur = Duration::from_secs(1);
        let arr = arrival_schedule(ArrivalKind::Uniform, 100.0, dur, 0, p(0));
        assert_eq!(arr.len(), 100);
        let gap = arr[1].elapsed_since(arr[0]);
        for w in arr.windows(2) {
            let g = w[1].elapsed_since(w[0]);
            let dev = g.as_nanos().abs_diff(gap.as_nanos());
            assert!(dev <= 1, "jitter {dev}ns");
        }
    }

    #[test]
    fn uniform_phases_differ_between_processes() {
        let dur = Duration::from_secs(1);
        let a = arrival_schedule(ArrivalKind::Uniform, 100.0, dur, 0, p(0));
        let b = arrival_schedule(ArrivalKind::Uniform, 100.0, dur, 0, p(1));
        assert_ne!(a[0], b[0]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = arrival_schedule(ArrivalKind::Poisson, 0.0, Duration::from_secs(1), 0, p(0));
    }

    #[test]
    fn batch_of_one_matches_raw_schedule() {
        let dur = Duration::from_secs(2);
        let raw = arrival_schedule(ArrivalKind::Poisson, 100.0, dur, 5, p(0));
        let ticks = batched_schedule(ArrivalKind::Poisson, 100.0, dur, 5, p(0), 1);
        assert_eq!(ticks.len(), raw.len());
        assert!(ticks.iter().zip(&raw).all(|(&(t, c), &r)| t == r && c == 1));
    }

    #[test]
    fn batching_preserves_payload_count_and_causality() {
        let dur = Duration::from_secs(2);
        for b in [2usize, 7, 16] {
            let raw = arrival_schedule(ArrivalKind::Poisson, 200.0, dur, 9, p(1));
            let ticks = batched_schedule(ArrivalKind::Poisson, 200.0, dur, 9, p(1), b);
            let total: u32 = ticks.iter().map(|&(_, c)| c).sum();
            assert_eq!(total as usize, raw.len(), "no payload lost or invented at B={b}");
            // Every full group carries exactly B; only the tail may be short.
            assert!(ticks[..ticks.len() - 1].iter().all(|&(_, c)| c as usize == b));
            // A tick never fires before the arrivals it coalesces.
            let mut idx = 0;
            for &(t, c) in &ticks {
                for _ in 0..c {
                    assert!(raw[idx] <= t, "payload broadcast before it arrived");
                    idx += 1;
                }
            }
            // Ticks are still sorted.
            assert!(ticks.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_panics() {
        let _ = batched_schedule(ArrivalKind::Poisson, 10.0, Duration::from_secs(1), 0, p(0), 0);
    }
}
