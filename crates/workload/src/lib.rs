//! Workload generation, latency measurement and experiment running.
//!
//! Reproduces the paper's measurement methodology (§4.2): a *symmetric*
//! workload in which all `n` processes a-broadcast at the same rate (the
//! global rate being the *throughput*), and the performance metric is the
//! **latency** of atomic broadcast — the average, over all processes and
//! messages, of the time between `abroadcast(m)` and `adeliver(m)`.
//!
//! [`run_variant`] is the one-call entry point the figure harnesses use:
//! it instantiates one of the paper's stacks on the simulated LAN, applies
//! a Poisson (or uniformly spaced) arrival schedule, trims warm-up, and
//! returns latency statistics plus saturation diagnostics.

pub mod coalesce;
pub mod gen;
pub mod runner;
pub mod stats;

pub use coalesce::BatchCoalescer;
pub use gen::{arrival_schedule, batched_schedule, ArrivalKind};
pub use runner::{
    run_abcast_experiment, run_variant, ExperimentResult, WorkloadSpec, CI_SMOKE_SEED,
};
pub use stats::LatencyStats;
