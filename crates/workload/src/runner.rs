//! The experiment runner: one stack, one load point, one latency number.

use iabc_core::stacks::{self, StackParams};
use iabc_core::{
    AbcastCommand, AbcastEvent, ConsensusFamily, CostModel, PipelineProbe, RbKind, VariantKind,
};
use iabc_core::stacks::FdKind;
use iabc_runtime::Node;
use iabc_sim::{NetworkParams, SimBuilder, SimWorld, StopReason};
use iabc_types::{Duration, Payload, ProcessId, ProcessSet, Time};

/// The RNG seed pinned for CI smoke benchmarks: artifacts produced on
/// different runs (and machines) are byte-comparable only if the workload
/// schedule is identical, so the smoke configurations must all thread this
/// seed through [`WorkloadSpec::with_seed`].
pub const CI_SMOKE_SEED: u64 = 0xABCD_2006;

use crate::coalesce::BatchCoalescer;
use crate::gen::{arrival_schedule, batched_schedule, ArrivalKind};
use crate::stats::LatencyStats;

/// One load point of the paper's symmetric workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// System size `n`.
    pub n: usize,
    /// Global a-broadcast rate, *payloads*/second (split evenly).
    pub throughput: f64,
    /// Payload size in bytes (per client payload; a batched broadcast
    /// carries `batch × payload` bytes).
    pub payload: usize,
    /// Measured interval (after warm-up).
    pub duration: Duration,
    /// Warm-up: messages broadcast before this point are excluded.
    pub warmup: Duration,
    /// Grace period after the last broadcast for in-flight deliveries.
    pub drain: Duration,
    /// RNG seed (schedules are deterministic given the seed).
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalKind,
    /// Client-side batching `B`: up to this many payloads coalesce into one
    /// a-broadcast tick. `1` = one broadcast per payload (the paper's
    /// workload). Ignored when `adaptive_batch` is set.
    pub batch: usize,
    /// When set, the fixed `batch` is replaced by a queue-depth-driven
    /// [`BatchCoalescer`] bounded by `(min, max)`: the per-tick batch
    /// grows toward `max` while the a-deliver backlog rises and halves
    /// toward `min` when it drains — see [`WorkloadSpec::with_adaptive_batch`].
    pub adaptive_batch: Option<(usize, usize)>,
    /// Pipeline window `W` handed to the stack (consensus instances in
    /// flight per node). `1` = Algorithm 1 verbatim. Ignored when
    /// `adaptive_window` is set.
    pub window: usize,
    /// When set, the stack runs the AIMD window controller with these
    /// `(w_min, w_max)` bounds instead of the static `window`.
    pub adaptive_window: Option<(usize, usize)>,
    /// Decision-latency target for the adaptive controller (`None` keeps
    /// the stack default).
    pub latency_target: Option<Duration>,
    /// Backlog limit for the adaptive controller (`None` keeps the stack
    /// default).
    pub backlog_limit: Option<usize>,
    /// Server-side proposal cap (`usize::MAX` = uncapped): at most this
    /// many identifiers per consensus proposal, the rest spilling to the
    /// next instance.
    pub max_proposal_ids: usize,
    /// Whether the simulated hosts run the two-class priority lane
    /// (ordering frames served ahead of bulk payload traffic on every CPU
    /// and NIC). `false` is the paper's single-class FIFO model.
    pub priority_lane: bool,
    /// Whether the adaptive window controller uses the EWMA-relative
    /// congestion signal instead of the absolute latency target.
    pub ewma_signal: bool,
    /// Whether proposals exclude ids younger than ~one measured flood
    /// delay (see `iabc_core::PipelineConfig::proposal_freshness`).
    pub proposal_freshness: bool,
    /// Whether the stack runs the decided log and the catch-up protocol
    /// (frontier piggyback on every frame, range-fetch of missed
    /// instances). `false` is the paper's protocol, byte-identical on the
    /// wire.
    pub catch_up: bool,
}

impl WorkloadSpec {
    /// A spec with sane defaults: 1 s warm-up, 2 s drain, Poisson arrivals,
    /// no batching, window 1.
    pub fn new(n: usize, throughput: f64, payload: usize, duration: Duration) -> Self {
        WorkloadSpec {
            n,
            throughput,
            payload,
            duration,
            warmup: Duration::from_secs(1),
            drain: Duration::from_secs(2),
            seed: CI_SMOKE_SEED,
            arrivals: ArrivalKind::Poisson,
            batch: 1,
            adaptive_batch: None,
            window: 1,
            adaptive_window: None,
            latency_target: None,
            backlog_limit: None,
            max_proposal_ids: usize::MAX,
            priority_lane: false,
            ewma_signal: false,
            proposal_freshness: false,
            catch_up: false,
        }
    }

    /// Sets the throughput knobs: pipeline window `W` and batch size `B`
    /// (both clamped to at least 1). Clears a previously set adaptive
    /// window or adaptive batch — the last pipeline builder wins.
    pub fn with_pipeline(mut self, window: usize, batch: usize) -> Self {
        self.window = window.max(1);
        self.batch = batch.max(1);
        self.adaptive_window = None;
        self.adaptive_batch = None;
        self
    }

    /// Replaces the fixed batch `B` with a queue-depth-driven coalescer
    /// bounded by `[min, max]` (clamped to `1 ≤ min ≤ max`): each payload
    /// arrival observes its process's a-deliver backlog, the per-tick
    /// batch grows additively while the backlog rises and halves when it
    /// drains, and a tick fires once the pending payloads fill the
    /// current batch. Deterministic per workload seed.
    pub fn with_adaptive_batch(mut self, min: usize, max: usize) -> Self {
        let min = min.max(1);
        self.adaptive_batch = Some((min, max.max(min)));
        self
    }

    /// Gates proposals on identifier freshness: ids younger than ~one
    /// measured flood delay sit proposals out until their Data frames
    /// have plausibly landed everywhere (see
    /// `iabc_core::PipelineConfig::proposal_freshness`).
    pub fn with_proposal_freshness(mut self, on: bool) -> Self {
        self.proposal_freshness = on;
        self
    }

    /// Runs the stack with the AIMD window controller bounded by
    /// `[min, max]` instead of a static window.
    pub fn with_adaptive_window(mut self, min: usize, max: usize) -> Self {
        let min = min.max(1);
        self.adaptive_window = Some((min, max.max(min)));
        self
    }

    /// Caps consensus proposals at `cap` identifiers (clamped to ≥ 1).
    pub fn with_proposal_cap(mut self, cap: usize) -> Self {
        self.max_proposal_ids = cap.max(1);
        self
    }

    /// Sets the adaptive controller's decision-latency target.
    pub fn with_latency_target(mut self, target: Duration) -> Self {
        self.latency_target = Some(target);
        self
    }

    /// Sets the adaptive controller's backlog limit.
    pub fn with_backlog_limit(mut self, limit: usize) -> Self {
        self.backlog_limit = Some(limit);
        self
    }

    /// Pins the workload RNG seed (CI smoke configurations use
    /// [`CI_SMOKE_SEED`] so artifacts stay comparable run-to-run).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the simulated hosts with the two-class priority lane: ordering
    /// (consensus/FD) frames are served ahead of queued bulk payload
    /// frames on every CPU and NIC port.
    pub fn with_priority_lane(mut self, on: bool) -> Self {
        self.priority_lane = on;
        self
    }

    /// Switches the adaptive controller to the EWMA-relative congestion
    /// signal (halve on latency worsening vs its own moving average).
    pub fn with_ewma_signal(mut self) -> Self {
        self.ewma_signal = true;
        self
    }

    /// Turns on the decided log and the catch-up protocol (see
    /// `iabc_core::stacks::StackParams::with_catch_up`).
    pub fn with_catch_up(mut self, on: bool) -> Self {
        self.catch_up = on;
        self
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Latency over all `(message, process)` delivery pairs in the
    /// measurement window — the paper's metric.
    pub latency: LatencyStats,
    /// Broadcasts (batched ticks) a-broadcast inside the measurement window.
    pub broadcast_count: u64,
    /// Client payloads carried by those broadcasts (`= broadcast_count`
    /// when `batch == 1`).
    pub broadcast_payloads: u64,
    /// Delivery pairs observed for those broadcasts.
    pub delivered_pairs: u64,
    /// Payload-weighted delivery pairs (each delivered broadcast counts the
    /// payloads it coalesced).
    pub delivered_payload_pairs: u64,
    /// The subset of `delivered_payload_pairs` whose delivery *happened*
    /// inside the measurement window (not during the drain grace period) —
    /// the basis of the sustained-goodput metric. A saturated system keeps
    /// delivering its backlog long after the window closes; those
    /// deliveries count toward loss accounting but not toward goodput.
    pub delivered_payload_pairs_in_window: u64,
    /// Delivery pairs still missing when the run ended — nonzero means the
    /// system could not drain the offered load (or lost messages).
    pub missing_pairs: u64,
    /// Whether the run is considered saturated (≥ 2% missing pairs).
    pub saturated: bool,
    /// The measured window the counters cover.
    pub window_duration: Duration,
    /// Simulator events processed.
    pub events: u64,
    /// The pipeline window `W` of process 0 over (virtual) time, recorded
    /// at every observed change as `(seconds since start, W)` — flat
    /// `[(t₀, W)]` for static configs, the controller's trajectory for
    /// adaptive ones. Sampled once per runner slice (500 ms), so
    /// intra-slice flapping collapses to its endpoints.
    pub window_trajectory: Vec<(f64, usize)>,
    /// Process 0's window when the run ended.
    pub final_window: usize,
    /// Proposals truncated by the proposal cap, summed over all processes.
    pub proposal_cap_hits: u64,
    /// Mean consensus decision latency (propose → apply of locally
    /// proposed instances) in milliseconds, over all processes — the
    /// ordering-path health metric the priority lane targets. `0.0` when
    /// no decision latency was observed.
    pub mean_decision_latency_ms: f64,
    /// Whether the run used the two-class priority lane.
    pub priority_lane: bool,
    /// Consensus refusal messages (CT nacks, MR ⊥ echoes, suspicion
    /// echoes included) sent, summed over all processes — a proxy for
    /// rounds burned on unflooded proposals (one burned round produces up
    /// to `n - 1` refusals), the churn the freshness gate targets.
    /// Compare it between configurations at the same `n`; it is not a
    /// round count.
    pub nacked_rounds: u64,
    /// Identifiers excluded from proposals by the freshness gate, summed
    /// over all processes.
    pub freshness_held: u64,
    /// Process 0's per-tick batch size over (virtual) time, recorded at
    /// every observed change as `(seconds since start, B)` — flat
    /// `[(0.0, B)]` for fixed-batch runs, the coalescer's trajectory for
    /// adaptive ones.
    pub batch_trajectory: Vec<(f64, usize)>,
    /// Process 0's batch size when the run ended.
    pub final_batch: usize,
    /// Catch-up requests issued, summed over all processes (0 when the
    /// catch-up protocol is off — fault-free runs should stay near 0 past
    /// the start-up probes even with it on).
    pub catch_up_requests: u64,
    /// Decided entries learned through catch-up replies (instances ahead
    /// of the receiver's apply cursor on arrival), summed over all
    /// processes.
    pub caught_up_entries: u64,
    /// The lowest decided frontier over all processes when the run ended
    /// (0 when catch-up is off): how far the most lagging log can serve.
    pub min_decided_frontier: u64,
}

impl ExperimentResult {
    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// Sustained delivered client payloads per second per process: the
    /// end-to-end goodput of the run (payload-weighted deliveries that
    /// happened inside the measurement window, averaged over the `n`
    /// delivering processes and the window length).
    pub fn goodput_per_sec(&self, n: usize) -> f64 {
        if self.window_duration.is_zero() || n == 0 {
            return 0.0;
        }
        self.delivered_payload_pairs_in_window as f64
            / n as f64
            / self.window_duration.as_secs_f64()
    }
}

/// Runs one atomic broadcast experiment on the simulated LAN.
///
/// Generic over the stack: any [`Node`] speaking
/// [`AbcastCommand`]/[`AbcastEvent`] will do — all eight
/// [`iabc_core::stacks`] constructors qualify.
pub fn run_abcast_experiment<N>(
    net: &NetworkParams,
    spec: &WorkloadSpec,
    factory: impl FnMut(ProcessId) -> N,
) -> ExperimentResult
where
    N: Node<Command = AbcastCommand, Output = AbcastEvent> + PipelineProbe,
{
    assert!(spec.n >= 1, "need at least one process");
    let mut world =
        SimBuilder::new(spec.n, net.clone()).priority_lane(spec.priority_lane).build(factory);

    // Fixed-batch runs schedule the whole open-loop workload up front,
    // coalescing up to `spec.batch` payloads per broadcast tick. Each
    // process's ticks are scheduled in time order, so tick `i` of process
    // `p` is exactly the broadcast that gets sequence number `i` — that
    // mapping recovers the per-broadcast payload count from a delivered
    // id below. Adaptive-batch runs keep the *raw* arrival schedule and
    // coalesce at injection time instead, because the coalescer's batch
    // size depends on the live a-deliver backlog.
    let horizon = spec.warmup + spec.duration;
    let rate_per_proc = spec.throughput / spec.n as f64;
    let mut batch_of: Vec<Vec<u32>> = vec![Vec::new(); spec.n];
    let mut arrivals: Vec<(Time, ProcessId)> = Vec::new();
    if spec.adaptive_batch.is_none() {
        for p in ProcessId::all(spec.n) {
            for (at, count) in
                batched_schedule(spec.arrivals, rate_per_proc, horizon, spec.seed, p, spec.batch)
            {
                world.schedule_command(
                    p,
                    at,
                    AbcastCommand::Broadcast(Payload::zeroed(spec.payload * count as usize)),
                );
                batch_of[p.as_usize()].push(count);
            }
        }
    } else {
        for p in ProcessId::all(spec.n) {
            for at in arrival_schedule(spec.arrivals, rate_per_proc, horizon, spec.seed, p) {
                arrivals.push((at, p));
            }
        }
        // One global time order (ties broken by process id) so injection
        // is deterministic per seed.
        arrivals.sort_by_key(|&(at, p)| (at, p.as_usize()));
    }

    let window_start = Time::ZERO + spec.warmup;
    let window_end = Time::ZERO + horizon;
    let deadline = window_end + spec.drain;

    let mut latency = LatencyStats::new();
    let mut broadcast_count = 0u64;
    let mut broadcast_payloads = 0u64;
    let mut delivered_pairs = 0u64;
    let mut delivered_payload_pairs = 0u64;
    let mut delivered_payload_pairs_in_window = 0u64;
    // Ids broadcast in-window → payloads carried.
    let mut expected: std::collections::BTreeMap<iabc_types::MsgId, u32> =
        std::collections::BTreeMap::new();

    // Fires one broadcast tick carrying process `p`'s pending payloads at
    // time `at` (no-op when nothing is pending) — the one place the
    // tick-to-sequence accounting and the coalesced payload sizing live,
    // shared by the batch-full and tail-flush paths.
    fn flush_batch<N>(
        world: &mut SimWorld<N>,
        batch_of: &mut [Vec<u32>],
        pending: &mut [u32],
        p: ProcessId,
        at: Time,
        payload: usize,
    ) where
        N: Node<Command = AbcastCommand, Output = AbcastEvent>,
    {
        let pi = p.as_usize();
        if pending[pi] == 0 {
            return;
        }
        batch_of[pi].push(pending[pi]);
        world.schedule_command(
            p,
            at,
            AbcastCommand::Broadcast(Payload::zeroed(payload * pending[pi] as usize)),
        );
        pending[pi] = 0;
    }

    // The adaptive coalescing state: one controller and one pending-count
    // per process (inert — bounds collapsed to the fixed batch — when
    // adaptive batching is off).
    let (b_min, b_max) = spec.adaptive_batch.unwrap_or((spec.batch, spec.batch));
    let mut coalescers: Vec<BatchCoalescer> =
        (0..spec.n).map(|_| BatchCoalescer::new(b_min, b_max)).collect();
    let mut pending: Vec<u32> = vec![0; spec.n];
    // Arrival instant of each process's newest pending payload: the tail
    // flush must not tick earlier than this — `world.now()` alone can be
    // stale (an empty event queue leaves the clock at the last processed
    // event, which may precede the final arrivals).
    let mut pending_last_at: Vec<Time> = vec![Time::ZERO; spec.n];
    let mut arr_idx = 0usize;
    let mut tail_flushed = false;
    let mut batch_trajectory: Vec<(f64, usize)> = vec![(0.0, coalescers[0].current())];

    // Run in slices, draining outputs as we go to bound memory.
    let slice = Duration::from_millis(500);
    let mut cursor = Time::ZERO;
    let mut window_trajectory: Vec<(f64, usize)> =
        vec![(0.0, world.node(ProcessId::new(0)).current_window())];
    loop {
        cursor = (cursor + slice).max(cursor);
        let target = if cursor > deadline { deadline } else { cursor };
        // Adaptive ingestion: step arrival-by-arrival up to `target`. Each
        // arrival observes its process's current a-deliver backlog, adapts
        // the batch, and fires a broadcast tick once the pending payloads
        // fill it (the tick instant is the *last* coalesced arrival, so no
        // payload is ever broadcast before it arrived — exactly the
        // causality rule of the precomputed fixed-batch schedule).
        while arr_idx < arrivals.len() && arrivals[arr_idx].0 <= target {
            let (at, p) = arrivals[arr_idx];
            arr_idx += 1;
            world.run_until(at);
            let pi = p.as_usize();
            pending[pi] += 1;
            pending_last_at[pi] = at;
            let co = &mut coalescers[pi];
            co.observe(world.node(p).ingest_backlog());
            if pi == 0 {
                let b = co.current();
                if batch_trajectory.last().is_none_or(|&(_, last)| last != b) {
                    batch_trajectory.push((world.now().as_secs_f64(), b));
                }
            }
            if pending[pi] as usize >= co.current() {
                flush_batch(&mut world, &mut batch_of, &mut pending, p, at, spec.payload);
            }
        }
        if !tail_flushed && arr_idx == arrivals.len() {
            // The last arrivals are in: flush partial batches so no
            // payload is stranded below its batch-fill threshold.
            tail_flushed = true;
            let now = world.now();
            for p in ProcessId::all(spec.n) {
                // Never tick before the payloads being flushed arrived
                // (the causality rule mid-run flushes get from using the
                // arrival instant directly).
                let at = pending_last_at[p.as_usize()].max(now);
                flush_batch(&mut world, &mut batch_of, &mut pending, p, at, spec.payload);
            }
        }
        let stop = world.run_until(target);
        for rec in world.drain_outputs() {
            match rec.output {
                AbcastEvent::Broadcast { id } => {
                    if rec.at >= window_start && rec.at < window_end {
                        let count = batch_of[id.sender().as_usize()]
                            .get(id.seq() as usize)
                            .copied()
                            .unwrap_or(1);
                        broadcast_count += 1;
                        broadcast_payloads += u64::from(count);
                        expected.insert(id, count);
                    }
                }
                AbcastEvent::Delivered { msg } => {
                    let t0 = msg.broadcast_at();
                    if t0 >= window_start && t0 < window_end {
                        if let Some(&count) = expected.get(&msg.id()) {
                            delivered_pairs += 1;
                            delivered_payload_pairs += u64::from(count);
                            if rec.at < window_end {
                                delivered_payload_pairs_in_window += u64::from(count);
                            }
                            latency.record(rec.at.elapsed_since(t0));
                        }
                    }
                }
            }
        }
        let w = world.node(ProcessId::new(0)).current_window();
        if window_trajectory.last().is_none_or(|&(_, last)| last != w) {
            window_trajectory.push((world.now().as_secs_f64(), w));
        }
        // Quiescence only ends the run once every arrival has been
        // injected — adaptive runs hold future arrivals outside the event
        // queue, so an idle instant mid-schedule is not the end.
        if (stop == StopReason::Quiescent && arr_idx == arrivals.len()) || target == deadline {
            break;
        }
    }

    let final_window = world.node(ProcessId::new(0)).current_window();
    let proposal_cap_hits =
        ProcessId::all(spec.n).map(|p| world.node(p).capped_proposals()).sum();
    let nacked_rounds = ProcessId::all(spec.n).map(|p| world.node(p).nacked_rounds()).sum();
    let freshness_held = ProcessId::all(spec.n).map(|p| world.node(p).freshness_held()).sum();
    let catch_up_requests =
        ProcessId::all(spec.n).map(|p| world.node(p).catch_up_requests()).sum();
    let caught_up_entries =
        ProcessId::all(spec.n).map(|p| world.node(p).caught_up_entries()).sum();
    let min_decided_frontier =
        ProcessId::all(spec.n).map(|p| world.node(p).decided_frontier()).min().unwrap_or(0);
    let (latency_sum, latency_count) = ProcessId::all(spec.n)
        .map(|p| world.node(p).decision_latencies())
        .fold((Duration::ZERO, 0u64), |(s, c), (ds, dc)| (s + ds, c + dc));
    let mean_decision_latency_ms = if latency_count > 0 {
        latency_sum.as_secs_f64() * 1e3 / latency_count as f64
    } else {
        0.0
    };

    let expected_pairs = broadcast_count * spec.n as u64;
    let missing_pairs = expected_pairs.saturating_sub(delivered_pairs);
    let saturated =
        expected_pairs > 0 && (missing_pairs as f64 / expected_pairs as f64) >= 0.02;

    ExperimentResult {
        latency,
        broadcast_count,
        broadcast_payloads,
        delivered_pairs,
        delivered_payload_pairs,
        delivered_payload_pairs_in_window,
        missing_pairs,
        saturated,
        window_duration: spec.duration,
        events: world.stats().events,
        window_trajectory,
        final_window,
        proposal_cap_hits,
        mean_decision_latency_ms,
        priority_lane: spec.priority_lane,
        nacked_rounds,
        freshness_held,
        final_batch: coalescers[0].current(),
        batch_trajectory,
        catch_up_requests,
        caught_up_entries,
        min_decided_frontier,
    }
}

/// Runs one experiment for a named paper stack (variant × consensus
/// family × RB strategy) — the entry point used by every figure harness.
pub fn run_variant(
    variant: VariantKind,
    family: ConsensusFamily,
    rb: RbKind,
    net: &NetworkParams,
    cost: CostModel,
    spec: &WorkloadSpec,
) -> ExperimentResult {
    let mut params = StackParams {
        n: spec.n,
        rb,
        fd: FdKind::Never,
        cost,
        pipeline: iabc_core::PipelineConfig::fixed(spec.window),
        priority_lane: spec.priority_lane,
        learners: ProcessSet::new(),
    };
    if let Some((min, max)) = spec.adaptive_window {
        params = params.with_adaptive_window(min, max);
    }
    if let Some(target) = spec.latency_target {
        params = params.with_latency_target(target);
    }
    if let Some(limit) = spec.backlog_limit {
        params = params.with_backlog_limit(limit);
    }
    if spec.max_proposal_ids != usize::MAX {
        params = params.with_proposal_cap(spec.max_proposal_ids);
    }
    if spec.ewma_signal {
        params = params.with_ewma_signal();
    }
    if spec.proposal_freshness {
        params = params.with_proposal_freshness(true);
    }
    if spec.catch_up {
        params = params.with_catch_up(true);
    }
    match (variant, family) {
        (VariantKind::Indirect, ConsensusFamily::Ct) => {
            run_abcast_experiment(net, spec, |p| stacks::indirect_ct(p, &params))
        }
        (VariantKind::Indirect, ConsensusFamily::Mr) => {
            run_abcast_experiment(net, spec, |p| stacks::indirect_mr(p, &params))
        }
        (VariantKind::DirectMessages, ConsensusFamily::Ct) => {
            run_abcast_experiment(net, spec, |p| stacks::direct_ct_messages(p, &params))
        }
        (VariantKind::DirectMessages, ConsensusFamily::Mr) => {
            run_abcast_experiment(net, spec, |p| stacks::direct_mr_messages(p, &params))
        }
        (VariantKind::FaultyIds, ConsensusFamily::Ct) => {
            run_abcast_experiment(net, spec, |p| stacks::faulty_ct_ids(p, &params))
        }
        (VariantKind::FaultyIds, ConsensusFamily::Mr) => {
            run_abcast_experiment(net, spec, |p| stacks::faulty_mr_ids(p, &params))
        }
        (VariantKind::UrbIds, ConsensusFamily::Ct) => {
            run_abcast_experiment(net, spec, |p| stacks::urb_ct_ids(p, &params))
        }
        (VariantKind::UrbIds, ConsensusFamily::Mr) => {
            run_abcast_experiment(net, spec, |p| stacks::urb_mr_ids(p, &params))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(n: usize, throughput: f64, payload: usize) -> WorkloadSpec {
        let mut s = WorkloadSpec::new(n, throughput, payload, Duration::from_millis(1500));
        s.warmup = Duration::from_millis(300);
        s.drain = Duration::from_secs(3);
        s
    }

    #[test]
    fn indirect_ct_delivers_everything_at_low_load() {
        let spec = quick_spec(3, 50.0, 32);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            &spec,
        );
        assert!(r.broadcast_count > 30, "workload too small: {}", r.broadcast_count);
        assert_eq!(r.missing_pairs, 0, "all messages must deliver at 50 msg/s");
        assert!(!r.saturated);
        assert!(r.mean_ms() > 0.1 && r.mean_ms() < 50.0, "mean {} ms", r.mean_ms());
    }

    #[test]
    fn latency_grows_with_throughput() {
        let net = NetworkParams::setup1();
        let cost = CostModel::setup1();
        let lo = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &quick_spec(3, 30.0, 1),
        );
        let hi = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &quick_spec(3, 600.0, 1),
        );
        assert!(
            hi.mean_ms() > lo.mean_ms(),
            "high load ({}) must beat low load ({})",
            hi.mean_ms(),
            lo.mean_ms()
        );
    }

    #[test]
    fn direct_messages_hurt_with_large_payloads() {
        // Figure 1's claim, in miniature: at moderate load, consensus on
        // full messages is slower than indirect consensus once payloads
        // are big.
        let net = NetworkParams::setup1();
        let cost = CostModel::setup1();
        let spec = quick_spec(3, 100.0, 4000);
        let direct = run_variant(
            VariantKind::DirectMessages,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &spec,
        );
        let indirect = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &spec,
        );
        assert!(
            direct.mean_ms() > indirect.mean_ms(),
            "direct {} ms vs indirect {} ms",
            direct.mean_ms(),
            indirect.mean_ms()
        );
    }

    #[test]
    fn batching_conserves_payload_accounting() {
        let spec = quick_spec(3, 120.0, 8).with_pipeline(1, 4);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::zero(),
            &spec,
        );
        assert_eq!(r.missing_pairs, 0, "low load must fully drain");
        assert!(r.broadcast_count < r.broadcast_payloads, "B=4 must coalesce");
        assert_eq!(r.delivered_payload_pairs, r.broadcast_payloads * 3);
        assert!(r.goodput_per_sec(3) > 0.0);
    }

    #[test]
    fn pipelined_window_still_delivers_everything() {
        for window in [2usize, 8] {
            let spec = quick_spec(3, 200.0, 16).with_pipeline(window, 1);
            let r = run_variant(
                VariantKind::Indirect,
                ConsensusFamily::Ct,
                RbKind::EagerN2,
                &NetworkParams::setup1(),
                CostModel::setup1(),
                &spec,
            );
            assert_eq!(r.missing_pairs, 0, "W={window} lost deliveries");
            assert!(!r.saturated);
        }
    }

    #[test]
    fn adaptive_window_still_delivers_everything_and_records_trajectory() {
        let spec = quick_spec(3, 300.0, 16).with_adaptive_window(1, 16).with_proposal_cap(8);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            &spec,
        );
        assert_eq!(r.missing_pairs, 0, "adaptive run lost deliveries");
        assert!(!r.window_trajectory.is_empty());
        assert!(
            r.window_trajectory.iter().all(|&(_, w)| (1..=16).contains(&w)),
            "trajectory out of bounds: {:?}",
            r.window_trajectory
        );
        assert!((1..=16).contains(&r.final_window));
    }

    #[test]
    fn static_runs_report_a_flat_trajectory_and_no_cap_hits() {
        let spec = quick_spec(3, 100.0, 8).with_pipeline(4, 1);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::zero(),
            &spec,
        );
        assert_eq!(r.window_trajectory, vec![(0.0, 4)], "static W must never move");
        assert_eq!(r.final_window, 4);
        assert_eq!(r.proposal_cap_hits, 0, "uncapped run must not report cap hits");
    }

    #[test]
    fn proposal_cap_spill_conserves_deliveries() {
        // A tight cap forces spills at this rate; nothing may be lost and
        // the cap hits must be visible to the harness.
        let spec = quick_spec(3, 400.0, 8).with_pipeline(1, 1).with_proposal_cap(2);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::zero(),
            &spec,
        );
        assert_eq!(r.missing_pairs, 0, "spill path lost deliveries");
        assert!(r.proposal_cap_hits > 0, "cap never engaged at 400 msg/s with cap 2");
    }

    #[test]
    fn priority_lane_run_delivers_everything_and_reports_decision_latency() {
        let net = NetworkParams::setup1();
        let cost = CostModel::setup1();
        let base = quick_spec(3, 200.0, 64);
        let off = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &base,
        );
        let on = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &base.clone().with_priority_lane(true),
        );
        assert!(!off.priority_lane);
        assert!(on.priority_lane);
        assert_eq!(on.missing_pairs, 0, "the lane must not lose deliveries");
        assert_eq!(
            on.delivered_payload_pairs, off.delivered_payload_pairs,
            "the lane re-orders service, never the delivered set"
        );
        assert!(off.mean_decision_latency_ms > 0.0, "decision latency must be observed");
        assert!(on.mean_decision_latency_ms > 0.0);
    }

    #[test]
    fn ewma_signal_run_stays_healthy() {
        let spec = quick_spec(3, 300.0, 16).with_adaptive_window(1, 16).with_ewma_signal();
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            &spec,
        );
        assert_eq!(r.missing_pairs, 0, "EWMA-signal run lost deliveries");
        assert!(r.window_trajectory.iter().all(|&(_, w)| (1..=16).contains(&w)));
    }

    #[test]
    fn adaptive_batch_conserves_payloads_and_stays_in_bounds() {
        let spec = quick_spec(3, 300.0, 8).with_adaptive_batch(1, 16);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            &spec,
        );
        assert_eq!(r.missing_pairs, 0, "adaptive batching must not lose payloads");
        assert_eq!(r.delivered_payload_pairs, r.broadcast_payloads * 3);
        assert!(
            r.batch_trajectory.iter().all(|&(_, b)| (1..=16).contains(&b)),
            "batch left its bounds: {:?}",
            r.batch_trajectory
        );
        assert!((1..=16).contains(&r.final_batch));
    }

    #[test]
    fn adaptive_batch_is_deterministic_per_seed() {
        let spec = quick_spec(3, 500.0, 8).with_adaptive_batch(1, 8).with_seed(77);
        let run = || {
            run_variant(
                VariantKind::Indirect,
                ConsensusFamily::Ct,
                RbKind::EagerN2,
                &NetworkParams::setup1(),
                CostModel::setup1(),
                &spec,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.batch_trajectory, b.batch_trajectory);
        assert_eq!(a.broadcast_count, b.broadcast_count);
        assert_eq!(a.delivered_payload_pairs, b.delivered_payload_pairs);
        assert_eq!(a.final_batch, b.final_batch);
        // A different seed drives a different schedule (and usually a
        // different coalescing history).
        let c = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            &spec.clone().with_seed(78),
        );
        assert_ne!(a.broadcast_count, 0);
        assert_ne!((a.broadcast_count, a.delivered_pairs), (c.broadcast_count, c.delivered_pairs));
    }

    #[test]
    fn fixed_batch_runs_report_flat_batch_trajectory() {
        let spec = quick_spec(3, 120.0, 8).with_pipeline(1, 4);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::zero(),
            &spec,
        );
        assert_eq!(r.batch_trajectory, vec![(0.0, 4)], "fixed B must never move");
        assert_eq!(r.final_batch, 4);
    }

    #[test]
    fn freshness_gated_run_delivers_everything() {
        let spec = quick_spec(3, 400.0, 16)
            .with_adaptive_window(1, 16)
            .with_proposal_cap(64)
            .with_proposal_freshness(true);
        let r = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &NetworkParams::setup1(),
            CostModel::setup1(),
            &spec,
        );
        assert_eq!(r.missing_pairs, 0, "the gate must never strand a payload");
        // The run is long enough past warm-up that the gate engages.
        assert!(r.freshness_held > 0, "gate never engaged at 400/s");
    }

    #[test]
    fn catch_up_run_logs_everything_and_baselines_report_zero() {
        let net = NetworkParams::setup1();
        let cost = CostModel::setup1();
        let base = quick_spec(3, 80.0, 16);
        let off = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &base,
        );
        assert_eq!(off.catch_up_requests, 0, "catch-up metrics must be inert by default");
        assert_eq!(off.caught_up_entries, 0);
        assert_eq!(off.min_decided_frontier, 0);

        let on = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &base.clone().with_catch_up(true),
        );
        assert_eq!(on.missing_pairs, 0, "catch-up run lost deliveries");
        assert_eq!(
            on.delivered_payload_pairs, off.delivered_payload_pairs,
            "catch-up must not change what a fault-free run delivers"
        );
        // Every process logged the full decision sequence...
        assert!(on.min_decided_frontier > 0, "no process logged anything");
        // ...without leaning on range-fetches: only the start-up probes
        // (one burst of n-1 per process) fire in a fault-free run.
        assert!(
            on.caught_up_entries <= 3,
            "fault-free run caught up {} entries",
            on.caught_up_entries
        );
    }

    #[test]
    fn all_eight_stacks_run_cleanly_at_low_load() {
        let net = NetworkParams::setup2();
        let spec = quick_spec(3, 40.0, 16);
        for variant in [
            VariantKind::Indirect,
            VariantKind::DirectMessages,
            VariantKind::FaultyIds,
            VariantKind::UrbIds,
        ] {
            for family in [ConsensusFamily::Ct, ConsensusFamily::Mr] {
                let r = run_variant(
                    variant,
                    family,
                    RbKind::LazyN,
                    &net,
                    CostModel::setup2(),
                    &spec,
                );
                assert_eq!(
                    r.missing_pairs, 0,
                    "{variant:?}/{family:?} lost messages in a fault-free run"
                );
            }
        }
    }
}
