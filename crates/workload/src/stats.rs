//! Latency statistics.

use iabc_types::Duration;

/// Running latency statistics with exact percentiles.
///
/// Stores every sample (runs are bounded), computes mean/stddev via
/// Welford's algorithm, and sorts lazily for percentiles.
///
/// # Example
///
/// ```
/// use iabc_types::Duration;
/// use iabc_workload::LatencyStats;
///
/// let mut s = LatencyStats::new();
/// for ms in [1u64, 2, 3, 4, 5] {
///     s.record(Duration::from_millis(ms));
/// }
/// assert_eq!(s.count(), 5);
/// assert!((s.mean_ms() - 3.0).abs() < 1e-9);
/// assert_eq!(s.percentile(0.5), Duration::from_millis(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Duration>,
    sorted: bool,
    mean: f64,
    m2: f64,
    min: Option<Duration>,
    max: Option<Duration>,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Adds one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.sorted = false;
        let x = latency.as_secs_f64();
        let n = self.samples.len() as f64 + 1.0;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.max = Some(self.max.map_or(latency, |m| m.max(latency)));
        self.samples.push(latency);
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        for &s in &other.samples {
            self.record(s);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in milliseconds (0 if empty).
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean * 1e3
        }
    }

    /// Standard deviation in milliseconds (0 if fewer than 2 samples).
    pub fn stddev_ms(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            (self.m2 / (self.samples.len() as f64 - 1.0)).sqrt() * 1e3
        }
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Duration {
        self.min.unwrap_or(Duration::ZERO)
    }

    /// Largest sample (zero if empty).
    pub fn max(&self) -> Duration {
        self.max.unwrap_or(Duration::ZERO)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        // Classic nearest-rank: rank = ⌈q·N⌉ (1-based), clamped to [1, N].
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Median latency in milliseconds.
    pub fn median_ms(&mut self) -> f64 {
        self.percentile(0.5).as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_ms(), 0.0);
        assert_eq!(s.stddev_ms(), 0.0);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
        assert_eq!(s.min(), Duration::ZERO);
    }

    #[test]
    fn mean_and_stddev() {
        let mut s = LatencyStats::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.record(ms(v));
        }
        assert!((s.mean_ms() - 5.0).abs() < 1e-9);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev_ms() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), ms(2));
        assert_eq!(s.max(), ms(9));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(ms(v));
        }
        assert_eq!(s.percentile(0.0), ms(1));
        assert_eq!(s.percentile(1.0), ms(100));
        assert_eq!(s.percentile(0.5), ms(50));
        assert_eq!(s.percentile(0.95), ms(95));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        a.record(ms(1));
        let mut b = LatencyStats::new();
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        let mut s = LatencyStats::new();
        s.record(ms(1));
        let _ = s.percentile(1.5);
    }
}
