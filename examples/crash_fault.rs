//! Crash-fault demo: a process crashes mid-run; the heartbeat failure
//! detector kicks in, consensus rotates past the dead coordinator, and the
//! survivors keep ordering messages — atomic broadcast's guarantees hold
//! with `f < n/2` for the indirect CT stack.
//!
//! Run with: `cargo run --example crash_fault`

use indirect_abcast::prelude::*;

fn main() {
    let n = 3;
    // Heartbeats every 10 ms, suspicion after 60 ms of silence.
    let params =
        StackParams::with_heartbeat(n, Duration::from_millis(10), Duration::from_millis(60));

    let crash_at = Time::ZERO + Duration::from_millis(120);
    let faults = FaultPlan::with_crashes(CrashSchedule::new().crash(ProcessId::new(1), crash_at));

    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(faults)
        .build(|p| stacks::indirect_ct(p, &params));

    // Twenty messages spread over 400 ms, from all processes — some before
    // the crash, some after (the crashed process stops broadcasting).
    let mut scheduled = 0u32;
    for i in 0..20u64 {
        let p = ProcessId::new((i % 3) as u16);
        let at = Time::ZERO + Duration::from_millis(20 * i + 5);
        world.schedule_command(p, at, AbcastCommand::Broadcast(Payload::zeroed(32)));
        if !(p == ProcessId::new(1) && at >= crash_at) {
            scheduled += 1;
        }
    }

    // Heartbeat timers run forever, so run for a bounded horizon.
    world.run_until(Time::ZERO + Duration::from_secs(3));

    let mut checker = AbcastChecker::new(n);
    let mut per_process = vec![0u32; n];
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
        if matches!(rec.output, AbcastEvent::Delivered { .. }) {
            per_process[rec.process.as_usize()] += 1;
        }
    }

    println!("p1 crashed at {crash_at}; deliveries per process: {per_process:?}");
    println!("(p1 only counts messages it delivered before crashing.)");

    let crashed = [false, true, false];
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "property violations: {violations:?}");
    assert_eq!(per_process[0], per_process[2], "correct processes agree");
    assert!(per_process[0] >= scheduled.saturating_sub(1), "survivors keep making progress");
    println!(
        "\nSafety and liveness verified: {} messages totally ordered by the survivors. ✓",
        per_process[0]
    );
}
