//! A miniature of the paper's Figure 1: latency of atomic broadcast as a
//! function of message size, with consensus on full messages vs indirect
//! consensus on identifiers.
//!
//! Run with: `cargo run --release --example latency_sweep`
//! (use --release: this simulates tens of thousands of messages)

use indirect_abcast::prelude::*;

fn main() {
    let net = NetworkParams::setup1();
    let cost = CostModel::setup1();
    let throughput = 100.0;

    println!("n = 3, Setup 1, {throughput} msg/s (mini Figure 1a)\n");
    println!("{:>10} | {:>22} | {:>22}", "size [B]", "Indirect (mean ms)", "Consensus (mean ms)");

    for size in [1usize, 1000, 2000, 3000, 4000, 5000] {
        let mut spec = WorkloadSpec::new(3, throughput, size, Duration::from_secs(3));
        spec.warmup = Duration::from_millis(500);
        let indirect = run_variant(
            VariantKind::Indirect,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &spec,
        );
        let direct = run_variant(
            VariantKind::DirectMessages,
            ConsensusFamily::Ct,
            RbKind::EagerN2,
            &net,
            cost,
            &spec,
        );
        println!(
            "{size:>10} | {:>22.3} | {:>22.3}",
            indirect.mean_ms(),
            direct.mean_ms()
        );
    }
    println!(
        "\nIndirect consensus keeps consensus traffic payload-free, so its latency\n\
         barely grows with message size — the motivation for the whole paper."
    );
}
