//! Quickstart: three simulated processes totally order a handful of
//! messages with the paper's stack (reliable broadcast + indirect CT
//! consensus).
//!
//! Run with: `cargo run --example quickstart`

use indirect_abcast::prelude::*;

fn main() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut world =
        SimBuilder::new(n, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));

    // Every process a-broadcasts two messages, interleaved in time.
    for round in 0..2u64 {
        for p in 0..n as u16 {
            world.schedule_command(
                ProcessId::new(p),
                Time::ZERO + Duration::from_millis(1 + round * 3 + p as u64),
                AbcastCommand::Broadcast(Payload::from(
                    format!("hello #{round} from p{p}").into_bytes(),
                )),
            );
        }
    }
    world.run_to_quiescence();

    // Collect per-process delivery orders.
    let mut orders: Vec<Vec<MsgId>> = vec![Vec::new(); n];
    for rec in world.outputs() {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }

    println!("Delivery order at each process:");
    for (i, order) in orders.iter().enumerate() {
        let rendered: Vec<String> = order.iter().map(|id| id.to_string()).collect();
        println!("  p{i}: {}", rendered.join(" -> "));
    }

    assert!(orders.iter().all(|o| o == &orders[0]), "total order must agree");
    assert_eq!(orders[0].len(), 2 * n, "every message must be delivered");
    println!("\nAll {n} processes delivered {} messages in the SAME total order. ✓", 2 * n);
}
