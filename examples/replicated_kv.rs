//! A replicated key-value store on top of atomic broadcast — the classic
//! state-machine-replication pattern the paper's introduction motivates.
//!
//! Each replica applies `SET key value` commands in a-delivery order;
//! because atomic broadcast gives every replica the same order, all
//! replicas end in identical states even though commands originate
//! concurrently at different replicas.
//!
//! Run with: `cargo run --example replicated_kv`

use std::collections::BTreeMap;

use indirect_abcast::prelude::*;

/// A SET command, serialized into the message payload.
fn set_cmd(key: &str, value: &str) -> Payload {
    Payload::from(format!("{key}={value}").into_bytes())
}

fn apply(store: &mut BTreeMap<String, String>, payload: &[u8]) {
    let text = String::from_utf8_lossy(payload);
    if let Some((k, v)) = text.split_once('=') {
        store.insert(k.to_string(), v.to_string());
    }
}

fn main() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut world =
        SimBuilder::new(n, NetworkParams::setup2()).build(|p| stacks::indirect_ct(p, &params));

    // Conflicting writes to the same keys from different replicas, plus
    // some disjoint writes — all issued near-simultaneously.
    let writes: Vec<(u16, &str, &str)> = vec![
        (0, "color", "red"),
        (1, "color", "green"),
        (2, "color", "blue"),
        (0, "shape", "circle"),
        (2, "shape", "square"),
        (1, "count", "42"),
    ];
    for (i, (replica, key, value)) in writes.iter().enumerate() {
        world.schedule_command(
            ProcessId::new(*replica),
            Time::ZERO + Duration::from_micros(100 + i as u64 * 7),
            AbcastCommand::Broadcast(set_cmd(key, value)),
        );
    }
    world.run_to_quiescence();

    // Apply deliveries per replica.
    let mut stores: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); n];
    for rec in world.outputs() {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            apply(&mut stores[rec.process.as_usize()], msg.payload().bytes());
        }
    }

    println!("Final state at each replica:");
    for (i, store) in stores.iter().enumerate() {
        println!("  replica {i}: {store:?}");
    }

    assert!(
        stores.iter().all(|s| s == &stores[0]),
        "replicas diverged — atomic broadcast is broken"
    );
    println!(
        "\nAll replicas converged to the same state despite concurrent conflicting writes. ✓"
    );
    println!("(The winner of the color race was decided by the total order, not by luck.)");
}
