//! The same protocol stack again — this time over loop-back TCP sockets,
//! with every message passing through the real wire codec.
//!
//! Run with: `cargo run --example tcp_cluster`

use indirect_abcast::prelude::*;

fn main() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = TcpCluster::start(n, |p| stacks::indirect_ct(p, &params));

    for i in 0..4u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::from(format!("tcp-msg-{i}").into_bytes())),
        );
    }

    let outputs = cluster.run_for(std::time::Duration::from_millis(800));
    let mut orders: Vec<Vec<MsgId>> = vec![Vec::new(); n];
    for rec in &outputs {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    cluster.shutdown();

    println!("Delivery orders over TCP:");
    for (i, order) in orders.iter().enumerate() {
        let rendered: Vec<String> = order.iter().map(|id| id.to_string()).collect();
        println!("  p{i}: {}", rendered.join(" -> "));
    }
    assert!(orders.iter().all(|o| o.len() == 4 && o == &orders[0]));
    println!("\nEncoded, framed, shipped over sockets, decoded — same total order. ✓");
}
