//! The same protocol stack, on real OS threads with wall-clock time —
//! the "prototype" half of the Neko-style sim/real duality.
//!
//! Run with: `cargo run --example thread_cluster`

use indirect_abcast::prelude::*;

fn main() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_ct(p, &params));

    for i in 0..5u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::from(format!("msg-{i}").into_bytes())),
        );
    }

    let outputs = cluster.run_for(std::time::Duration::from_millis(500));
    let mut orders: Vec<Vec<MsgId>> = vec![Vec::new(); n];
    for rec in &outputs {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    cluster.shutdown();

    println!("Delivery orders over real threads:");
    for (i, order) in orders.iter().enumerate() {
        let rendered: Vec<String> = order.iter().map(|id| id.to_string()).collect();
        println!("  p{i}: {}", rendered.join(" -> "));
    }
    assert!(orders.iter().all(|o| o.len() == 5 && o == &orders[0]));
    println!("\nSame sans-io state machines, real concurrency, same total order. ✓");
}
