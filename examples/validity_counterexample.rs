//! The paper's §2.2 counterexample, executed.
//!
//! Running an *unmodified* consensus algorithm directly on message
//! identifiers breaks atomic broadcast: if the only holder of a message
//! crashes after its identifier is ordered, every later message is stuck
//! behind a hole that can never be filled — a Validity violation.
//! Indirect consensus (Algorithm 2) survives the *same* schedule because
//! processes refuse (nack) proposals whose messages they don't hold.
//!
//! Run with: `cargo run --example validity_counterexample`

use indirect_abcast::broadcast::BcastMsg;
use indirect_abcast::core::Envelope;
use indirect_abcast::prelude::*;

/// The adversarial schedule from §2.2, applied to a given stack.
///
/// The coordinator of consensus instance 1 is p2. So: p2 a-broadcasts `m`,
/// but every payload-bearing copy it sends is lost (quasi-reliable
/// channels — p2 crashes moments later); its consensus traffic goes
/// through. Concurrently p1 a-broadcasts `m2` (delivered normally), which
/// makes p0 and p1 join consensus instance 1 — where the faulty stack
/// blindly acks p2's proposal `{id(m)}`. Later p0 a-broadcasts `m'`.
fn run<N>(factory: impl FnMut(ProcessId) -> N) -> (Vec<usize>, Vec<Violation>)
where
    N: indirect_abcast::runtime::Node<
        Msg = Envelope<IdSet>,
        Command = AbcastCommand,
        Output = AbcastEvent,
    >,
{
    let n = 3;
    let initiator = ProcessId::new(2); // coordinator of instance 1, round 1
    let crash_at = Time::ZERO + Duration::from_millis(50);
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(CrashSchedule::new().crash(initiator, crash_at)))
        .build(factory);

    // Quasi-reliable loss: every broadcast-layer frame from the (about to
    // crash) initiator disappears; consensus frames pass.
    world.set_drop_filter(Box::new(move |from, _to, msg| {
        from == initiator
            && matches!(msg, Envelope::Bcast(BcastMsg::Data(_) | BcastMsg::Relay(_)))
    }));

    // m from the doomed initiator; m2 from p1 makes everyone participate
    // in instance 1; m' from p0 afterwards.
    world.schedule_command(initiator, Time::ZERO, AbcastCommand::Broadcast(Payload::zeroed(16)));
    world.schedule_command(
        ProcessId::new(1),
        Time::ZERO + Duration::from_millis(1),
        AbcastCommand::Broadcast(Payload::zeroed(16)),
    );
    world.schedule_command(
        ProcessId::new(0),
        Time::ZERO + Duration::from_millis(100),
        AbcastCommand::Broadcast(Payload::zeroed(16)),
    );
    world.run_until(Time::ZERO + Duration::from_secs(5));

    let mut checker = AbcastChecker::new(n);
    let mut delivered = vec![0usize; n];
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
        if matches!(rec.output, AbcastEvent::Delivered { .. }) {
            delivered[rec.process.as_usize()] += 1;
        }
    }
    (delivered, checker.check_complete(&[false, false, true]))
}

fn main() {
    let fd = FdKind::Heartbeat {
        interval: Duration::from_millis(10),
        timeout: Duration::from_millis(60),
    };
    let params = StackParams { fd, ..StackParams::fault_free(3) };

    println!("=== Stack A: unmodified consensus on identifiers (the faulty stack) ===");
    let (delivered, violations) = run(|p| stacks::faulty_ct_ids(p, &params));
    println!("deliveries per process: {delivered:?}");
    for v in &violations {
        println!("VIOLATION: {v}");
    }
    assert!(
        violations.iter().any(|v| matches!(v, Violation::ValidityViolation { .. })),
        "the faulty stack should have violated Validity under this schedule"
    );
    println!(
        "→ id(m) was ordered but msgs(m) died with p2: every later message is\n\
         stuck behind the hole. Validity violated, exactly as §2.2 predicts.\n"
    );

    println!("=== Stack B: indirect consensus (Algorithm 2) under the SAME schedule ===");
    let (delivered, violations) = run(|p| stacks::indirect_ct(p, &params));
    println!("deliveries per process: {delivered:?}");
    assert!(violations.is_empty(), "indirect consensus must survive: {violations:?}");
    assert!(delivered[0] >= 2 && delivered[1] >= 2, "m2 and m' must be delivered");
    println!("→ survivors nacked the unheld proposal and delivered m2 and m' normally. ✓");
}
