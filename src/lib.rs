//! # indirect-abcast
//!
//! A complete Rust implementation of
//! *Solving Atomic Broadcast with Indirect Consensus*
//! (Ekwall & Schiper, DSN 2006): atomic broadcast by reduction to
//! **indirect consensus** — consensus on message *identifiers* guarded by
//! the `rcv` predicate and the **No loss** property — together with every
//! substrate and baseline the paper uses:
//!
//! * Chandra–Toueg and Mostéfaoui–Raynal ◇S consensus, original and
//!   indirect (Algorithms 2 and 3), with the paper's resilience results
//!   (`f < n/2` vs `f < n/3`);
//! * reliable broadcast in O(n) and O(n²) messages, uniform reliable
//!   broadcast;
//! * heartbeat / scripted failure detectors;
//! * a deterministic discrete-event LAN simulator calibrated to the
//!   paper's two testbeds, plus thread and TCP runtimes for the same
//!   sans-io protocol code;
//! * a benchmark harness regenerating every figure of the paper's
//!   evaluation;
//! * throughput knobs the paper never measured — a pipelined consensus
//!   window (`StackParams::with_window`), an AIMD adaptive window
//!   controller with server-side proposal capping
//!   (`StackParams::with_adaptive_window` / `with_proposal_cap`), and
//!   client-side proposal batching (`WorkloadSpec::with_pipeline`) —
//!   plus the `pipeline_sweep` bench that maps the `W × B` goodput
//!   surface with an adaptive row.
//!
//! ## Quickstart
//!
//! ```
//! use indirect_abcast::prelude::*;
//!
//! // Three simulated processes running RB + indirect CT consensus.
//! let params = StackParams::fault_free(3);
//! let mut world = SimBuilder::new(3, NetworkParams::setup1())
//!     .build(|p| stacks::indirect_ct(p, &params));
//!
//! // Everyone broadcasts one message "at the same time".
//! for p in 0..3u16 {
//!     world.schedule_command(
//!         ProcessId::new(p),
//!         Time::ZERO + Duration::from_millis(1),
//!         AbcastCommand::Broadcast(Payload::zeroed(64)),
//!     );
//! }
//! world.run_to_quiescence();
//!
//! // All processes deliver all three messages, in the same total order.
//! let mut orders = vec![Vec::new(); 3];
//! for rec in world.outputs() {
//!     if let AbcastEvent::Delivered { msg } = &rec.output {
//!         orders[rec.process.as_usize()].push(msg.id());
//!     }
//! }
//! assert_eq!(orders[0].len(), 3);
//! assert_eq!(orders[0], orders[1]);
//! assert_eq!(orders[1], orders[2]);
//! ```
//!
//! See `examples/` for larger scenarios (replicated key-value store, crash
//! faults, the paper's §2.2 counterexample, real-thread and TCP clusters)
//! and `crates/bench` for the figure harnesses.

pub use iabc_broadcast as broadcast;
pub use iabc_consensus as consensus;
pub use iabc_core as core;
pub use iabc_fd as fd;
pub use iabc_net as net;
pub use iabc_runtime as runtime;
pub use iabc_sim as sim;
pub use iabc_types as types;
pub use iabc_workload as workload;

/// One-line import for applications and examples.
pub mod prelude {
    pub use iabc_core::stacks::{self, FdKind, StackParams};
    pub use iabc_core::{
        AbcastChecker, AbcastCommand, AbcastEvent, ConsensusFamily, CostModel, PipelineConfig,
        RbKind, VariantKind, Violation,
    };
    pub use iabc_net::{NetFaultPlan, NetFaultReport, TcpCluster, ThreadCluster};
    pub use iabc_sim::{
        CrashSchedule, FaultPlan, FaultTraceEntry, LinkFault, LinkFaults, NetworkParams,
        SimBuilder, SimWorld, StopReason,
    };
    pub use iabc_types::{
        AppMessage, Duration, IdSet, MsgId, Payload, ProcessId, ProcessSet, SystemConfig, Time,
    };
    pub use iabc_workload::{
        run_abcast_experiment, run_variant, ArrivalKind, ExperimentResult, LatencyStats,
        WorkloadSpec,
    };
}
