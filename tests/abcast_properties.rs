//! End-to-end property checks: every stack variant, fault-free, must
//! satisfy all four atomic broadcast properties; runs must be
//! deterministic and payload-order independent.

use indirect_abcast::prelude::*;

/// Runs `msgs` broadcasts across all processes on the given stack factory
/// and returns the checker plus per-process delivery counts.
fn run_fault_free<N>(
    n: usize,
    msgs: u64,
    factory: impl FnMut(ProcessId) -> N,
) -> (AbcastChecker, Vec<usize>)
where
    N: indirect_abcast::runtime::Node<Command = AbcastCommand, Output = AbcastEvent>,
{
    let mut world = SimBuilder::new(n, NetworkParams::setup1()).build(factory);
    for i in 0..msgs {
        world.schedule_command(
            ProcessId::new((i % n as u64) as u16),
            Time::ZERO + Duration::from_micros(137 * i + 11),
            AbcastCommand::Broadcast(Payload::zeroed((i % 64) as usize)),
        );
    }
    let stop = world.run_to_quiescence();
    assert_eq!(stop, StopReason::Quiescent);

    let mut checker = AbcastChecker::new(n);
    let mut delivered = vec![0usize; n];
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
        if matches!(rec.output, AbcastEvent::Delivered { .. }) {
            delivered[rec.process.as_usize()] += 1;
        }
    }
    (checker, delivered)
}

macro_rules! fault_free_stack_test {
    ($name:ident, $ctor:ident, $n:expr) => {
        #[test]
        fn $name() {
            let params = StackParams::fault_free($n);
            let (checker, delivered) = run_fault_free($n, 40, |p| stacks::$ctor(p, &params));
            let violations = checker.check_complete(&[false; $n]);
            assert!(violations.is_empty(), "violations: {violations:?}");
            assert!(delivered.iter().all(|&d| d == 40), "deliveries: {delivered:?}");
        }
    };
}

fault_free_stack_test!(indirect_ct_n3_satisfies_all_properties, indirect_ct, 3);
fault_free_stack_test!(indirect_ct_n5_satisfies_all_properties, indirect_ct, 5);
fault_free_stack_test!(indirect_mr_n4_satisfies_all_properties, indirect_mr, 4);
fault_free_stack_test!(indirect_mr_n7_satisfies_all_properties, indirect_mr, 7);
fault_free_stack_test!(direct_ct_messages_satisfies_all_properties, direct_ct_messages, 3);
fault_free_stack_test!(direct_mr_messages_satisfies_all_properties, direct_mr_messages, 3);
fault_free_stack_test!(faulty_ct_ids_ok_without_crashes, faulty_ct_ids, 3);
fault_free_stack_test!(faulty_mr_ids_ok_without_crashes, faulty_mr_ids, 3);
fault_free_stack_test!(urb_ct_ids_satisfies_all_properties, urb_ct_ids, 3);
fault_free_stack_test!(urb_mr_ids_satisfies_all_properties, urb_mr_ids, 3);

#[test]
fn lazy_rb_variant_is_also_correct_fault_free() {
    let params = StackParams { rb: RbKind::LazyN, ..StackParams::fault_free(3) };
    let (checker, delivered) = run_fault_free(3, 40, |p| stacks::indirect_ct(p, &params));
    assert!(checker.check_complete(&[false; 3]).is_empty());
    assert_eq!(delivered, vec![40; 3]);
}

#[test]
fn single_process_system_works() {
    let params = StackParams::fault_free(1);
    let (checker, delivered) = run_fault_free(1, 10, |p| stacks::indirect_ct(p, &params));
    assert!(checker.check_complete(&[false]).is_empty());
    assert_eq!(delivered, vec![10]);
}

#[test]
fn runs_are_bitwise_deterministic() {
    let run = || {
        let params = StackParams::fault_free(3);
        let mut world =
            SimBuilder::new(3, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));
        for i in 0..25u64 {
            world.schedule_command(
                ProcessId::new((i % 3) as u16),
                Time::ZERO + Duration::from_micros(211 * i),
                AbcastCommand::Broadcast(Payload::zeroed(8)),
            );
        }
        world.run_to_quiescence();
        world
            .outputs()
            .iter()
            .map(|r| (r.at, r.process, format!("{:?}", r.output)))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same schedule must give identical traces");
}

#[test]
fn heavy_interleaving_keeps_total_order() {
    // All processes broadcast at the same instant repeatedly — maximum
    // contention for the ordering layer.
    let params = StackParams::fault_free(3);
    let mut world =
        SimBuilder::new(3, NetworkParams::setup2()).build(|p| stacks::indirect_ct(p, &params));
    for burst in 0..10u64 {
        for p in 0..3u16 {
            world.schedule_command(
                ProcessId::new(p),
                Time::ZERO + Duration::from_millis(burst),
                AbcastCommand::Broadcast(Payload::zeroed(16)),
            );
        }
    }
    world.run_to_quiescence();
    let mut checker = AbcastChecker::new(3);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    assert!(checker.check_complete(&[false; 3]).is_empty());
    assert_eq!(checker.sequences()[0].len(), 30);
}

#[test]
fn consensus_batches_under_load() {
    // At high load the reduction must batch: far fewer consensus instances
    // than messages (this is what makes the algorithm scale).
    let params = StackParams::fault_free(3);
    let mut world =
        SimBuilder::new(3, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));
    let msgs = 300u64;
    for i in 0..msgs {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_micros(500 * i), // 2000 msg/s
            AbcastCommand::Broadcast(Payload::zeroed(1)),
        );
    }
    world.run_to_quiescence();
    let instances = world.node(ProcessId::new(0)).instance();
    assert!(instances < msgs, "no batching: {instances} instances for {msgs} msgs");
    assert!(instances > 1, "everything in one instance is impossible here");
    assert_eq!(world.node(ProcessId::new(0)).delivered_count(), msgs);
}

#[test]
fn instance_state_is_garbage_collected() {
    // Long run: the per-node consensus bookkeeping must stay bounded even
    // though hundreds of instances complete (the GC extension).
    let params = StackParams::fault_free(3);
    let mut world =
        SimBuilder::new(3, NetworkParams::setup2()).build(|p| stacks::indirect_ct(p, &params));
    let msgs = 600u64;
    for i in 0..msgs {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_micros(5_000 * i), // low rate: ~1 instance per msg
            AbcastCommand::Broadcast(Payload::zeroed(1)),
        );
    }
    world.run_to_quiescence();
    let node = world.node(ProcessId::new(0));
    assert_eq!(node.delivered_count(), msgs);
    assert!(node.instance() > 100, "expected many instances, got {}", node.instance());
    assert!(
        node.consensus_slots() <= 16,
        "manager footprint unbounded: {} slots after {} instances",
        node.consensus_slots(),
        node.instance()
    );
}
