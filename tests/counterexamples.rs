//! The paper's two counterexamples as executable tests.
//!
//! §2.2: an unmodified consensus on identifiers violates atomic broadcast
//! Validity after one crash with quasi-reliable loss. §3.3.2: the same
//! schedule defeats the unmodified MR algorithm; the indirect adaptations
//! survive it.

use indirect_abcast::broadcast::BcastMsg;
use indirect_abcast::core::Envelope;
use indirect_abcast::prelude::*;

/// The §2.2 schedule (see `examples/validity_counterexample.rs` for the
/// narrated version): the instance-1 coordinator broadcasts a message
/// whose payload copies are all lost, then crashes after consensus.
fn section_2_2_schedule<N>(
    n: usize,
    factory: impl FnMut(ProcessId) -> N,
) -> (AbcastChecker, Vec<bool>)
where
    N: indirect_abcast::runtime::Node<
        Msg = Envelope<IdSet>,
        Command = AbcastCommand,
        Output = AbcastEvent,
    >,
{
    // Instance 1 (coord_offset 1), round 1 → coordinator (2 mod n).
    let initiator = ProcessId::new((2 % n) as u16);
    let crash_at = Time::ZERO + Duration::from_millis(50);
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(CrashSchedule::new().crash(initiator, crash_at)))
        .build(factory);
    world.set_drop_filter(Box::new(move |from, _to, msg| {
        from == initiator
            && matches!(msg, Envelope::Bcast(BcastMsg::Data(_) | BcastMsg::Relay(_)))
    }));

    world.schedule_command(initiator, Time::ZERO, AbcastCommand::Broadcast(Payload::zeroed(8)));
    // A concurrent broadcast pulls everyone into consensus instance 1.
    world.schedule_command(
        ProcessId::new(1),
        Time::ZERO + Duration::from_millis(1),
        AbcastCommand::Broadcast(Payload::zeroed(8)),
    );
    // And a later message that must not get stuck.
    world.schedule_command(
        ProcessId::new(0),
        Time::ZERO + Duration::from_millis(100),
        AbcastCommand::Broadcast(Payload::zeroed(8)),
    );
    world.run_until(Time::ZERO + Duration::from_secs(5));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let mut crashed = vec![false; n];
    crashed[initiator.as_usize()] = true;
    (checker, crashed)
}

fn heartbeat_params(n: usize) -> StackParams {
    StackParams::with_heartbeat(n, Duration::from_millis(10), Duration::from_millis(60))
}

#[test]
fn faulty_ct_ids_violates_validity_under_2_2_schedule() {
    let params = heartbeat_params(3);
    let (checker, crashed) = section_2_2_schedule(3, |p| stacks::faulty_ct_ids(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(
        violations.iter().any(|v| matches!(v, Violation::ValidityViolation { .. })),
        "expected a Validity violation, got: {violations:?}"
    );
    // The stronger diagnosis: the crashed initiator delivered messages that
    // no correct process can ever deliver — Uniform agreement breaks too.
    assert!(violations.iter().any(|v| matches!(v, Violation::AgreementViolation { .. })));
}

#[test]
fn indirect_ct_survives_2_2_schedule() {
    let params = heartbeat_params(3);
    let (checker, crashed) = section_2_2_schedule(3, |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "Algorithm 2 must survive §2.2: {violations:?}");
    // Both healthy messages reach both survivors.
    assert!(checker.sequences()[0].len() >= 2, "{:?}", checker.sequences());
    assert_eq!(checker.sequences()[0], checker.sequences()[1]);
}

#[test]
fn faulty_mr_ids_violates_validity_under_2_2_schedule() {
    // §3.3.2's point, instantiated end-to-end: the unmodified MR algorithm
    // on identifiers orders an identifier whose payload is lost.
    // In the MR execution the doomed value spreads via Phase 2 unanimity at
    // the crashing coordinator's instance, so we use n = 3 where the
    // initiator coordinates instance 1.
    let params = heartbeat_params(3);
    let (checker, crashed) = section_2_2_schedule(3, |p| stacks::faulty_mr_ids(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(
        violations.iter().any(|v| matches!(v, Violation::ValidityViolation { .. })),
        "expected a Validity violation, got: {violations:?}"
    );
}

#[test]
fn indirect_mr_survives_2_2_schedule_with_n4() {
    // Within its f < n/3 bound (n = 4, one crash), Algorithm 3 survives
    // the same adversarial schedule.
    let params = heartbeat_params(4);
    let (checker, crashed) = section_2_2_schedule(4, |p| stacks::indirect_mr(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "Algorithm 3 must survive §2.2 at n=4: {violations:?}");
    let survivors = [0usize, 1, 3];
    for w in survivors.windows(2) {
        assert_eq!(checker.sequences()[w[0]], checker.sequences()[w[1]]);
    }
    assert!(checker.sequences()[0].len() >= 2);
}

#[test]
fn monitor_catches_seeded_order_violation() {
    // Mutation-style sanity check of the checker itself: feed it a
    // deliberately reordered trace and make sure it complains. (A checker
    // that cannot fail proves nothing about the stacks above.)
    use indirect_abcast::types::{AppMessage, MsgId};
    let mut checker = AbcastChecker::new(2);
    let ids: Vec<MsgId> = (0..2).map(|s| MsgId::new(ProcessId::new(0), s)).collect();
    for id in &ids {
        checker.record(ProcessId::new(0), &AbcastEvent::Broadcast { id: *id });
    }
    let deliver = |id: MsgId| AbcastEvent::Delivered {
        msg: AppMessage::new(id, Payload::zeroed(1), Time::ZERO),
    };
    checker.record(ProcessId::new(0), &deliver(ids[0]));
    checker.record(ProcessId::new(0), &deliver(ids[1]));
    checker.record(ProcessId::new(1), &deliver(ids[1])); // swapped!
    checker.record(ProcessId::new(1), &deliver(ids[0]));
    assert!(checker
        .check_safety()
        .iter()
        .any(|v| matches!(v, Violation::OrderViolation { .. })));
}
