//! Crash-fault integration tests: the stacks must stay safe and live
//! within their resilience bounds, and the paper's resilience *loss* for
//! indirect MR (`f < n/3`) must be observable.

use indirect_abcast::prelude::*;

/// Heartbeat parameters used by all crash tests.
fn hb(n: usize) -> StackParams {
    StackParams::with_heartbeat(n, Duration::from_millis(10), Duration::from_millis(60))
}

/// Runs a crash schedule against a stack; returns (checker, crashed flags).
fn run_with_crashes<N>(
    n: usize,
    msgs: u64,
    crashes: &[(u16, u64)], // (process, millis)
    factory: impl FnMut(ProcessId) -> N,
) -> (AbcastChecker, Vec<bool>)
where
    N: indirect_abcast::runtime::Node<Command = AbcastCommand, Output = AbcastEvent>,
{
    let mut schedule = CrashSchedule::new();
    let mut crashed = vec![false; n];
    for &(p, at) in crashes {
        schedule = schedule.crash(ProcessId::new(p), Time::ZERO + Duration::from_millis(at));
        crashed[p as usize] = true;
    }
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(schedule))
        .build(factory);
    for i in 0..msgs {
        world.schedule_command(
            ProcessId::new((i % n as u64) as u16),
            Time::ZERO + Duration::from_millis(13 * i + 3),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    // Heartbeat timers run forever: bounded horizon, long enough to settle.
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    (checker, crashed)
}

/// Validity/agreement obligations only bind messages *accepted* by correct
/// processes; a crashed process's unsent broadcasts are vacuous. The
/// checker already handles that via the crashed flags.
#[test]
fn indirect_ct_survives_one_crash_of_three() {
    let params = hb(3);
    let (checker, crashed) =
        run_with_crashes(3, 30, &[(1, 100)], |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    // The two survivors delivered the same, nonempty sequence.
    let seq0 = &checker.sequences()[0];
    let seq2 = &checker.sequences()[2];
    assert_eq!(seq0, seq2);
    assert!(seq0.len() >= 20, "survivors stalled: only {} deliveries", seq0.len());
}

#[test]
fn pipelined_indirect_ct_survives_one_crash_of_three() {
    // The pipeline window must not weaken fault tolerance: with W ∈ {4, 16}
    // the survivors still deliver identical, complete sequences — no
    // duplicate and no lost ids — after one crash of three.
    for w in [4usize, 16] {
        let params = hb(3).with_window(w);
        let (checker, crashed) =
            run_with_crashes(3, 30, &[(1, 100)], |p| stacks::indirect_ct(p, &params));
        let violations = checker.check_complete(&crashed);
        assert!(violations.is_empty(), "W={w}: {violations:?}");
        let seq0 = &checker.sequences()[0];
        let seq2 = &checker.sequences()[2];
        assert_eq!(seq0, seq2, "W={w}: survivors disagree");
        assert!(seq0.len() >= 20, "W={w}: survivors stalled at {} deliveries", seq0.len());
    }
}

#[test]
fn indirect_ct_survives_two_crashes_of_five() {
    let params = hb(5);
    let (checker, crashed) =
        run_with_crashes(5, 40, &[(1, 80), (3, 160)], |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let survivors = [0usize, 2, 4];
    for w in survivors.windows(2) {
        assert_eq!(checker.sequences()[w[0]], checker.sequences()[w[1]]);
    }
    assert!(checker.sequences()[0].len() >= 25);
}

#[test]
fn indirect_mr_survives_one_crash_of_four() {
    // f = 1 < 4/3 is within the indirect-MR bound.
    let params = hb(4);
    let (checker, crashed) =
        run_with_crashes(4, 30, &[(2, 100)], |p| stacks::indirect_mr(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert!(checker.sequences()[0].len() >= 20);
    assert_eq!(checker.sequences()[0], checker.sequences()[1]);
    assert_eq!(checker.sequences()[1], checker.sequences()[3]);
}

#[test]
fn indirect_mr_stalls_beyond_its_resilience() {
    // The paper's headline negative result, observed: with n = 3 the
    // indirect MR algorithm needs ⌈(2n+1)/3⌉ = 3 echoes — ALL processes.
    // One crash (fine for f < n/2, fatal for f < n/3) stops decisions;
    // safety is preserved but liveness is gone.
    let params = hb(3);
    let (checker, _crashed) =
        run_with_crashes(3, 20, &[(1, 50)], |p| stacks::indirect_mr(p, &params));
    // Safety still holds...
    assert!(checker.check_safety().is_empty());
    // ...but messages broadcast after the crash are never delivered.
    let late_deliveries = checker.sequences()[0]
        .iter()
        .filter(|id| id.seq() >= 3) // later broadcasts of each process
        .count();
    assert_eq!(
        late_deliveries, 0,
        "indirect MR with n=3 must not make progress after a crash (f < n/3 violated)"
    );
    // The original MR (majority quorum) under the same schedule keeps going —
    // the resilience difference in action.
    let params = hb(3);
    let (checker, crashed) =
        run_with_crashes(3, 20, &[(1, 50)], |p| stacks::faulty_mr_ids(p, &params));
    assert!(checker.check_complete(&crashed).is_empty(), "no loss scenario absent here");
    // p1 crashes at 50 ms, so its own later broadcasts never happen:
    // 14 of the 20 scheduled messages are actually a-broadcast.
    assert!(
        checker.sequences()[0].len() >= 12,
        "original MR should keep ordering: got {}",
        checker.sequences()[0].len()
    );
}

#[test]
fn crash_before_start_is_tolerated() {
    let params = hb(3);
    let (checker, crashed) =
        run_with_crashes(3, 20, &[(2, 0)], |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert!(checker.sequences()[0].len() >= 12);
}

#[test]
fn urb_stack_survives_crash_with_quasi_reliable_loss() {
    // The *other* correct solution: URB + plain consensus on ids survives
    // the §2.2-style loss because ids only enter consensus after uniform
    // delivery.
    use indirect_abcast::broadcast::BcastMsg;
    use indirect_abcast::core::Envelope;

    let n = 3;
    let initiator = ProcessId::new(2);
    let params = hb(n);
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(
            CrashSchedule::new().crash(initiator, Time::ZERO + Duration::from_millis(50)),
        ))
        .build(|p| stacks::urb_ct_ids(p, &params));
    // Kill all of the initiator's payload-bearing frames.
    world.set_drop_filter(Box::new(move |from, _to, msg| {
        from == initiator
            && matches!(msg, Envelope::Bcast(BcastMsg::UrbData(_) | BcastMsg::UrbEcho(_)))
    }));
    world.schedule_command(initiator, Time::ZERO, AbcastCommand::Broadcast(Payload::zeroed(8)));
    world.schedule_command(
        ProcessId::new(1),
        Time::ZERO + Duration::from_millis(1),
        AbcastCommand::Broadcast(Payload::zeroed(8)),
    );
    world.schedule_command(
        ProcessId::new(0),
        Time::ZERO + Duration::from_millis(100),
        AbcastCommand::Broadcast(Payload::zeroed(8)),
    );
    world.run_until(Time::ZERO + Duration::from_secs(5));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let violations = checker.check_complete(&[false, false, true]);
    assert!(violations.is_empty(), "URB stack must survive: {violations:?}");
    // m2 and m' delivered by both survivors.
    assert!(checker.sequences()[0].len() >= 2);
    assert_eq!(checker.sequences()[0], checker.sequences()[1]);
}
