//! Crash-fault integration tests: the stacks must stay safe and live
//! within their resilience bounds, and the paper's resilience *loss* for
//! indirect MR (`f < n/3`) must be observable.

use indirect_abcast::prelude::*;

/// Heartbeat parameters used by all crash tests.
fn hb(n: usize) -> StackParams {
    StackParams::with_heartbeat(n, Duration::from_millis(10), Duration::from_millis(60))
}

/// Runs a crash schedule against a stack; returns (checker, crashed flags).
fn run_with_crashes<N>(
    n: usize,
    msgs: u64,
    crashes: &[(u16, u64)], // (process, millis)
    factory: impl FnMut(ProcessId) -> N,
) -> (AbcastChecker, Vec<bool>)
where
    N: indirect_abcast::runtime::Node<Command = AbcastCommand, Output = AbcastEvent>,
{
    let mut schedule = CrashSchedule::new();
    let mut crashed = vec![false; n];
    for &(p, at) in crashes {
        schedule = schedule.crash(ProcessId::new(p), Time::ZERO + Duration::from_millis(at));
        crashed[p as usize] = true;
    }
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(schedule))
        .build(factory);
    for i in 0..msgs {
        world.schedule_command(
            ProcessId::new((i % n as u64) as u16),
            Time::ZERO + Duration::from_millis(13 * i + 3),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    // Heartbeat timers run forever: bounded horizon, long enough to settle.
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    (checker, crashed)
}

/// Validity/agreement obligations only bind messages *accepted* by correct
/// processes; a crashed process's unsent broadcasts are vacuous. The
/// checker already handles that via the crashed flags.
#[test]
fn indirect_ct_survives_one_crash_of_three() {
    let params = hb(3);
    let (checker, crashed) =
        run_with_crashes(3, 30, &[(1, 100)], |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    // The two survivors delivered the same, nonempty sequence.
    let seq0 = &checker.sequences()[0];
    let seq2 = &checker.sequences()[2];
    assert_eq!(seq0, seq2);
    assert!(seq0.len() >= 20, "survivors stalled: only {} deliveries", seq0.len());
}

#[test]
fn pipelined_indirect_ct_survives_one_crash_of_three() {
    // The pipeline window must not weaken fault tolerance: with W ∈ {4, 16}
    // the survivors still deliver identical, complete sequences — no
    // duplicate and no lost ids — after one crash of three.
    for w in [4usize, 16] {
        let params = hb(3).with_window(w);
        let (checker, crashed) =
            run_with_crashes(3, 30, &[(1, 100)], |p| stacks::indirect_ct(p, &params));
        let violations = checker.check_complete(&crashed);
        assert!(violations.is_empty(), "W={w}: {violations:?}");
        let seq0 = &checker.sequences()[0];
        let seq2 = &checker.sequences()[2];
        assert_eq!(seq0, seq2, "W={w}: survivors disagree");
        assert!(seq0.len() >= 20, "W={w}: survivors stalled at {} deliveries", seq0.len());
    }
}

#[test]
fn adaptive_indirect_ct_survives_a_crash_mid_adaptation() {
    // A bursty schedule makes the adaptive windows move, and the crash
    // lands while the processes' windows can legitimately differ (the
    // controller is per-node). Survivors must still agree on the
    // delivered prefix — the window is a scheduling knob, never a safety
    // one.
    let params = hb(3)
        .with_adaptive_window(1, 16)
        .with_proposal_cap(2)
        .with_latency_target(Duration::from_millis(2));
    let mut world = SimBuilder::new(3, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(
            // 10 ms: mid-burst, with instances in flight on every node.
            CrashSchedule::new().crash(ProcessId::new(1), Time::ZERO + Duration::from_millis(10)),
        ))
        .build(|p| stacks::indirect_ct(p, &params));
    for i in 0..60u64 {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_micros(300 * i + 1_000),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_millis(9));
    // The burst must have pushed at least one controller off its floor
    // before the crash, or this test exercises nothing adaptive.
    let adapted = (0..3).any(|p| {
        let node = world.node(ProcessId::new(p));
        node.window() > 1 || node.window_adaptations().0 > 0
    });
    assert!(adapted, "no window adaptation happened before the crash");
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let mut checker = AbcastChecker::new(3);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let violations = checker.check_complete(&[false, true, false]);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let seq0 = &checker.sequences()[0];
    let seq2 = &checker.sequences()[2];
    assert_eq!(seq0, seq2, "survivors disagree after a mid-adaptation crash");
    assert!(seq0.len() >= 30, "survivors stalled: only {} deliveries", seq0.len());
}

#[test]
fn capped_proposal_remainder_survives_the_proposers_crash() {
    // Spill path under a crash: p0 broadcasts a burst far larger than its
    // proposal cap, proposes the first capped chunk, and dies. The
    // remainder it spilled must be decided by *other* nodes' instances —
    // p0 is gone, so any delivery of the later ids proves a different
    // proposer picked up the spill.
    let burst = 40u64;
    let params = hb(3).with_window(1).with_proposal_cap(2);
    let mut world = SimBuilder::new(3, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(
            // 20 ms: the burst is fully R-broadcast (sub-millisecond at 16
            // B payloads) and p0 has proposed its first capped instances,
            // but with cap 2 the vast majority of the burst is still
            // unordered spill.
            CrashSchedule::new().crash(ProcessId::new(0), Time::ZERO + Duration::from_millis(20)),
        ))
        .build(|p| stacks::indirect_ct(p, &params));
    for i in 0..burst {
        world.schedule_command(
            ProcessId::new(0),
            Time::ZERO + Duration::from_micros(100 * i),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_millis(19));
    assert!(
        world.node(ProcessId::new(0)).proposal_cap_hits() > 0,
        "p0 never hit its proposal cap before crashing"
    );
    let ordered_before_crash = world.node(ProcessId::new(1)).delivered_count();
    assert!(
        ordered_before_crash < burst,
        "burst fully ordered before the crash; the spill path is not exercised"
    );
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let mut checker = AbcastChecker::new(3);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let violations = checker.check_complete(&[true, false, false]);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let seq1 = &checker.sequences()[1];
    let seq2 = &checker.sequences()[2];
    assert_eq!(seq1, seq2, "survivors disagree on the spilled remainder");
    assert_eq!(
        seq1.len() as u64,
        burst,
        "the spilled remainder must be decided by the surviving nodes' instances"
    );
}

#[test]
fn freshness_gated_stack_never_strands_an_id_under_crashes() {
    // The freshness gate defers just-arrived ids from proposals; its
    // liveness obligation is that the deferral is always temporary — every
    // id a-broadcast by a correct process is eventually proposed and
    // decided, even when the load stops right after a burst (no further
    // deliveries to retrigger proposing; only the gate's wake-up timer
    // does) and a process crashes mid-burst.
    let params = hb(3)
        .with_adaptive_window(1, 16)
        .with_proposal_cap(64)
        .with_proposal_freshness(true);
    let mut world = SimBuilder::new(3, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(
            // Mid-burst: gated ids are sitting in `unordered` on every node.
            CrashSchedule::new().crash(ProcessId::new(1), Time::ZERO + Duration::from_millis(8)),
        ))
        .build(|p| stacks::indirect_ct(p, &params));
    // A tight burst, then silence: the tail of the burst is younger than
    // one flood delay when the last R-delivery happens, so the gate (once
    // warmed by the burst itself) must hand those ids to the wake-up path.
    for i in 0..60u64 {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_micros(150 * i + 500),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let gated: u64 =
        (0..3).map(|p| world.node(ProcessId::new(p)).freshness_held()).sum();
    assert!(gated > 0, "the burst never engaged the freshness gate");
    let mut checker = AbcastChecker::new(3);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let violations = checker.check_complete(&[false, true, false]);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let seq0 = &checker.sequences()[0];
    let seq2 = &checker.sequences()[2];
    assert_eq!(seq0, seq2, "survivors disagree under the freshness gate");
    // Every burst message accepted from a correct process was delivered —
    // nothing stayed gated forever (p1's own unsent tail is vacuous).
    assert!(seq0.len() >= 40, "ids stranded by the gate: only {} delivered", seq0.len());
}

#[test]
fn indirect_ct_survives_two_crashes_of_five() {
    let params = hb(5);
    let (checker, crashed) =
        run_with_crashes(5, 40, &[(1, 80), (3, 160)], |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let survivors = [0usize, 2, 4];
    for w in survivors.windows(2) {
        assert_eq!(checker.sequences()[w[0]], checker.sequences()[w[1]]);
    }
    assert!(checker.sequences()[0].len() >= 25);
}

#[test]
fn indirect_mr_survives_one_crash_of_four() {
    // f = 1 < 4/3 is within the indirect-MR bound.
    let params = hb(4);
    let (checker, crashed) =
        run_with_crashes(4, 30, &[(2, 100)], |p| stacks::indirect_mr(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert!(checker.sequences()[0].len() >= 20);
    assert_eq!(checker.sequences()[0], checker.sequences()[1]);
    assert_eq!(checker.sequences()[1], checker.sequences()[3]);
}

#[test]
fn indirect_mr_stalls_beyond_its_resilience() {
    // The paper's headline negative result, observed: with n = 3 the
    // indirect MR algorithm needs ⌈(2n+1)/3⌉ = 3 echoes — ALL processes.
    // One crash (fine for f < n/2, fatal for f < n/3) stops decisions;
    // safety is preserved but liveness is gone.
    let params = hb(3);
    let (checker, _crashed) =
        run_with_crashes(3, 20, &[(1, 50)], |p| stacks::indirect_mr(p, &params));
    // Safety still holds...
    assert!(checker.check_safety().is_empty());
    // ...but messages broadcast after the crash are never delivered.
    let late_deliveries = checker.sequences()[0]
        .iter()
        .filter(|id| id.seq() >= 3) // later broadcasts of each process
        .count();
    assert_eq!(
        late_deliveries, 0,
        "indirect MR with n=3 must not make progress after a crash (f < n/3 violated)"
    );
    // The original MR (majority quorum) under the same schedule keeps going —
    // the resilience difference in action.
    let params = hb(3);
    let (checker, crashed) =
        run_with_crashes(3, 20, &[(1, 50)], |p| stacks::faulty_mr_ids(p, &params));
    assert!(checker.check_complete(&crashed).is_empty(), "no loss scenario absent here");
    // p1 crashes at 50 ms, so its own later broadcasts never happen:
    // 14 of the 20 scheduled messages are actually a-broadcast.
    assert!(
        checker.sequences()[0].len() >= 12,
        "original MR should keep ordering: got {}",
        checker.sequences()[0].len()
    );
}

#[test]
fn crash_before_start_is_tolerated() {
    let params = hb(3);
    let (checker, crashed) =
        run_with_crashes(3, 20, &[(2, 0)], |p| stacks::indirect_ct(p, &params));
    let violations = checker.check_complete(&crashed);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert!(checker.sequences()[0].len() >= 12);
}

#[test]
fn urb_stack_survives_crash_with_quasi_reliable_loss() {
    // The *other* correct solution: URB + plain consensus on ids survives
    // the §2.2-style loss because ids only enter consensus after uniform
    // delivery.
    use indirect_abcast::broadcast::BcastMsg;
    use indirect_abcast::core::Envelope;

    let n = 3;
    let initiator = ProcessId::new(2);
    let params = hb(n);
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(
            CrashSchedule::new().crash(initiator, Time::ZERO + Duration::from_millis(50)),
        ))
        .build(|p| stacks::urb_ct_ids(p, &params));
    // Kill all of the initiator's payload-bearing frames.
    world.set_drop_filter(Box::new(move |from, _to, msg| {
        from == initiator
            && matches!(msg, Envelope::Bcast(BcastMsg::UrbData(_) | BcastMsg::UrbEcho(_)))
    }));
    world.schedule_command(initiator, Time::ZERO, AbcastCommand::Broadcast(Payload::zeroed(8)));
    world.schedule_command(
        ProcessId::new(1),
        Time::ZERO + Duration::from_millis(1),
        AbcastCommand::Broadcast(Payload::zeroed(8)),
    );
    world.schedule_command(
        ProcessId::new(0),
        Time::ZERO + Duration::from_millis(100),
        AbcastCommand::Broadcast(Payload::zeroed(8)),
    );
    world.run_until(Time::ZERO + Duration::from_secs(5));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let violations = checker.check_complete(&[false, false, true]);
    assert!(violations.is_empty(), "URB stack must survive: {violations:?}");
    // m2 and m' delivered by both survivors.
    assert!(checker.sequences()[0].len() >= 2);
    assert_eq!(checker.sequences()[0], checker.sequences()[1]);
}
