//! Nemesis tests: randomized partition / heal / crash-restart storms
//! against both runtimes.
//!
//! The property under test is the paper's quasi-reliable channel
//! assumption made real: partitions sever links mid-stream, lossy windows
//! drop and duplicate frames, processes crash and restart — and still
//! every correct process a-delivers the *byte-identical* decided
//! sequence, no accepted broadcast is lost, and the cluster converges
//! once the faults heal. The sim side replays exact schedules across
//! sizes; the TCP side drives the real event-loop transport (reconnect
//! with backoff, down-mode queues, catch-up repair) through the same
//! storms with wall-clock timing.

use indirect_abcast::core::DurableDecidedLog;
use indirect_abcast::prelude::*;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("iabc-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Heartbeat parameters generous enough that storms do not trip the FD
/// into permanent exclusion, tight enough that real crashes are seen.
fn hb(n: usize) -> StackParams {
    StackParams::with_heartbeat(n, Duration::from_millis(10), Duration::from_millis(80))
}

fn at(ms: u64) -> Time {
    Time::ZERO + Duration::from_millis(ms)
}

/// A pairwise partition storm: overlapping windows that always leave a
/// majority mutually connected, plus a duplicating background, across
/// three cluster sizes. Every process must deliver the identical,
/// complete sequence.
///
/// Deliberately no random drops here: the paper's channels are
/// quasi-reliable (no loss between correct processes), and the protocol
/// carries no retransmit for in-flight consensus frames — a permanently
/// dropped one wedges its instance, which is a *model* violation, not a
/// protocol bug. Partitions and duplicates stay inside the model
/// (delayed, reordered, repeated — never lost);
/// [`sim_lossy_storms_preserve_safety`] covers what loss must still
/// guarantee.
#[test]
fn sim_partition_storms_converge_across_sizes() {
    for &n in &[3usize, 5, 7] {
        let params = hb(n).with_catch_up(true);
        // Rolling pairwise partitions: link (i, i+1) is cut during window
        // i. Pairwise cuts never disconnect a majority (every process
        // still reaches n-2 others), but they force consensus and RB
        // traffic onto the surviving links and catch-up over the healed
        // ones.
        let mut links = LinkFaults::new(0xA5A5 + n as u64).duplicate(20);
        for i in 0..n {
            let a = ProcessId::new(i as u16);
            let b = ProcessId::new(((i + 1) % n) as u16);
            let from = 40 + 60 * i as u64;
            links = links.partition(a, b, at(from), at(from + 80));
        }
        let mut world = SimBuilder::new(n, NetworkParams::setup1())
            .faults(FaultPlan::with_links(links))
            .build(|p| stacks::indirect_ct(p, &params));
        let msgs = 20u64;
        for i in 0..msgs {
            world.schedule_command(
                ProcessId::new((i % n as u64) as u16),
                at(17 * i + 3),
                AbcastCommand::Broadcast(Payload::zeroed(16)),
            );
        }
        world.run_until(at(10_000));

        assert!(
            world.stats().frames_partitioned > 0,
            "n={n}: the partition windows never hit a frame"
        );
        let mut checker = AbcastChecker::new(n);
        for rec in world.outputs() {
            checker.record(rec.process, &rec.output);
        }
        let violations = checker.check_complete(&vec![false; n]);
        assert!(violations.is_empty(), "n={n}: {violations:?}");
        let seqs = checker.sequences();
        assert_eq!(seqs[0].len() as u64, msgs, "n={n}: lost broadcasts: {seqs:?}");
        for p in 1..n {
            assert_eq!(seqs[p], seqs[0], "n={n}: process {p} diverged");
        }
    }
}

/// A storm that *breaks* the quasi-reliable channel assumption: heavy
/// random frame loss on top of partitions. Liveness is forfeit by
/// construction (a dropped consensus frame has no retransmit and can
/// wedge its instance), but safety must survive arbitrary loss: uniform
/// integrity and prefix-compatible total order across every process, at
/// every cluster size and seed tried.
#[test]
fn sim_lossy_storms_preserve_safety() {
    for &n in &[3usize, 5] {
        for seed in 0..4u64 {
            let params = hb(n).with_catch_up(true);
            let mut links = LinkFaults::new(seed).drop(80).duplicate(40);
            for i in 0..n {
                let a = ProcessId::new(i as u16);
                let b = ProcessId::new(((i + 1) % n) as u16);
                let from = 30 + 50 * i as u64;
                links = links.partition(a, b, at(from), at(from + 70));
            }
            let mut world = SimBuilder::new(n, NetworkParams::setup1())
                .faults(FaultPlan::with_links(links))
                .build(|p| stacks::indirect_ct(p, &params));
            for i in 0..20u64 {
                world.schedule_command(
                    ProcessId::new((i % n as u64) as u16),
                    at(11 * i + 2),
                    AbcastCommand::Broadcast(Payload::zeroed(16)),
                );
            }
            world.run_until(at(5_000));
            let mut checker = AbcastChecker::new(n);
            for rec in world.outputs() {
                checker.record(rec.process, &rec.output);
            }
            let violations = checker.check_safety();
            assert!(
                violations.is_empty(),
                "n={n} seed={seed}: loss must never cost safety: {violations:?}"
            );
        }
    }
}

/// Crash-restart under partitions: the victim crashes inside a partition
/// window, restarts after the heal (from its durable decided log, so the
/// second incarnation resumes instead of re-delivering), and must
/// converge to the survivors' sequence — accepted broadcasts from every
/// window included.
#[test]
fn sim_crash_restart_inside_a_partition_heals_completely() {
    let n = 5;
    let victim = ProcessId::new(4);
    let dir = tmp_dir("nemesis-crash");
    let params = hb(n).with_catch_up(true);
    let schedule = CrashSchedule::new().crash_restart(victim, at(120), at(600));
    let links = LinkFaults::new(7)
        // The victim is cut off from half the cluster before it crashes,
        // and one survivor pair is cut during the victim's downtime.
        .partition(victim, ProcessId::new(0), at(60), at(200))
        .partition(victim, ProcessId::new(1), at(60), at(200))
        .partition(ProcessId::new(2), ProcessId::new(3), at(250), at(450));
    let dir_for_factory = dir.clone();
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(schedule).links(links))
        .build(move |p| {
            let mut node = stacks::indirect_ct(p, &params);
            let path = dir_for_factory.join(format!("decided-{}.log", p.as_usize()));
            node.set_decided_log(Box::new(DurableDecidedLog::open(path).unwrap()));
            node
        });
    // Survivor traffic through every phase; goes quiet before the restart
    // so the rejoin must use catch-up, then resumes after it.
    let msgs = 16u64;
    for i in 0..msgs {
        let t = if i < 12 { 14 * i + 3 } else { 700 + 20 * (i - 12) };
        world.schedule_command(
            ProcessId::new((i % 4) as u16),
            at(t),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.run_until(at(10_000));

    assert!(world.node(victim).catch_up_requests() > 0, "the victim never caught up");
    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    assert!(checker.check_safety().is_empty());
    let seqs = checker.sequences();
    assert_eq!(seqs[0].len() as u64, msgs, "survivors lost broadcasts");
    for p in 1..4 {
        assert_eq!(seqs[p], seqs[0], "survivor {p} diverged");
    }
    assert_eq!(
        seqs[4], seqs[0],
        "the restarted victim must converge to the survivors' sequence byte for byte"
    );
}

/// Same seed ⇒ same storm: two identically configured worlds must inject
/// the identical fault trace and decide the identical sequence; a
/// different seed must (for this configuration) inject a different one.
#[test]
fn sim_fault_storms_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let n = 5;
        let params = hb(n).with_catch_up(true);
        let links = LinkFaults::new(seed)
            .partition(ProcessId::new(0), ProcessId::new(1), at(50), at(250))
            .drop(120)
            .duplicate(60)
            .delay(100, Duration::from_millis(4))
            .record_trace();
        let mut world = SimBuilder::new(n, NetworkParams::setup1())
            .faults(FaultPlan::with_links(links))
            .build(|p| stacks::indirect_ct(p, &params));
        for i in 0..15u64 {
            world.schedule_command(
                ProcessId::new((i % n as u64) as u16),
                at(13 * i + 2),
                AbcastCommand::Broadcast(Payload::zeroed(16)),
            );
        }
        world.run_until(at(8_000));
        let trace: Vec<FaultTraceEntry> =
            world.fault_trace().expect("trace was enabled").to_vec();
        assert!(!trace.is_empty(), "a lossy storm must inject something");
        let mut checker = AbcastChecker::new(n);
        for rec in world.outputs() {
            checker.record(rec.process, &rec.output);
        }
        let seqs: Vec<Vec<MsgId>> = checker.sequences().iter().map(|s| s.to_vec()).collect();
        (trace, seqs)
    };
    let (trace_a, seqs_a) = run(42);
    let (trace_b, seqs_b) = run(42);
    assert_eq!(trace_a, trace_b, "same seed must inject the identical fault trace");
    assert_eq!(seqs_a, seqs_b, "same seed must decide the identical sequence");
    let (trace_c, _) = run(43);
    assert_ne!(trace_a, trace_c, "a different seed must perturb the storm");

    // CI artifact hook: when IABC_FAULT_TRACE names a path, dump the
    // seed-42 trace as JSONL so a failed (or green) nemesis run leaves an
    // inspectable record of exactly which faults were injected when.
    if let Ok(path) = std::env::var("IABC_FAULT_TRACE") {
        let mut out = String::new();
        for e in &trace_a {
            out.push_str(&format!(
                "{{\"at_ns\": {}, \"from\": {}, \"to\": {}, \"fault\": \"{:?}\"}}\n",
                e.at.as_nanos(),
                e.from.index(),
                e.to.index(),
                e.fault,
            ));
        }
        std::fs::write(&path, out).expect("write fault trace artifact");
    }
}

/// The real transport under a partition storm: a 5-process TcpCluster
/// with fault-plan windows that sever live sockets mid-run. The loops
/// must reconnect with backoff after each window, and catch-up must
/// repair whatever the severed links lost — every process converges to
/// the identical complete sequence.
#[test]
fn tcp_partition_storm_reconnects_and_converges() {
    let n = 5;
    let wall = |ms: u64| Duration::from_millis(ms);
    // Two storm waves: first p0–p1 and p0–p2 (p0 loses two links but
    // keeps a path through p3/p4), then p3 is cut from p0 and p1. Always
    // a connected majority; both waves heal well before the deadline.
    let plan = NetFaultPlan::new(0xBEEF)
        .partition(ProcessId::new(0), ProcessId::new(1), wall(150), wall(500))
        .partition(ProcessId::new(0), ProcessId::new(2), wall(200), wall(550))
        .partition(ProcessId::new(3), ProcessId::new(0), wall(600), wall(900))
        .partition(ProcessId::new(3), ProcessId::new(1), wall(650), wall(950));
    let params = StackParams::with_heartbeat(
        n,
        Duration::from_millis(25),
        // Generous FD timeout: a partitioned peer must not be durably
        // excluded before the window heals.
        Duration::from_millis(2_000),
    )
    .with_catch_up(true);
    let mut cluster =
        TcpCluster::start_with_faults(n, Some(plan), |p| stacks::indirect_ct(p, &params));
    let msgs = 25u16;
    // Broadcasts before, during, and after the storm windows.
    for i in 0..msgs {
        cluster.send_command(
            ProcessId::new(i % n as u16),
            AbcastCommand::Broadcast(Payload::from(vec![i as u8; 32])),
        );
        std::thread::sleep(std::time::Duration::from_millis(45));
    }
    // Let the last wave heal and catch-up settle. Each broadcast yields
    // one `Broadcast` event at its sender plus n `Delivered` events.
    let outputs = cluster.wait_for_outputs(
        msgs as usize * (n + 1),
        std::time::Duration::from_secs(30),
    );
    let reports = cluster.fault_reports();
    cluster.shutdown();

    let severed: u64 = reports.iter().map(|r| r.links_severed).sum();
    let reconnects: u64 = reports.iter().map(|r| r.reconnects).sum();
    assert!(severed >= 4, "the storm must have severed links: {reports:?}");
    assert!(reconnects >= 4, "healed windows must have reconnected: {reports:?}");

    let mut orders: Vec<Vec<MsgId>> = vec![Vec::new(); n];
    for rec in &outputs {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    assert_eq!(
        orders[0].len(),
        msgs as usize,
        "process 0 must deliver every broadcast: {:?}",
        orders.iter().map(Vec::len).collect::<Vec<_>>()
    );
    for p in 1..n {
        assert_eq!(orders[p], orders[0], "process {p} diverged after the storm");
    }
}
