//! Property-based testing of atomic broadcast safety under randomized
//! workloads and crash schedules.
//!
//! Safety (Uniform integrity + Uniform total order over the observed
//! prefix) must hold for *every* schedule, crash pattern within the
//! resilience bound, and payload mix. Liveness is checked separately in
//! the deterministic crash tests (it needs tuned failure-detector
//! horizons, which proptest shrinking would fight against).

use indirect_abcast::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Schedule {
    msgs: Vec<(u16, u64, usize)>, // (process, at-micros, payload size)
    crash: Option<(u16, u64)>,    // (process, at-micros)
}

fn schedule_strategy(n: u16, allow_crash: bool) -> impl Strategy<Value = Schedule> {
    let msgs = proptest::collection::vec(
        (0..n, 0u64..300_000, 0usize..256),
        1..40,
    );
    let crash = if allow_crash {
        proptest::option::of((0..n, 0u64..200_000)).boxed()
    } else {
        Just(None).boxed()
    };
    (msgs, crash).prop_map(|(msgs, crash)| Schedule { msgs, crash })
}

/// Runs the schedule on a stack and checks safety; returns the checker.
fn check_safety<N>(
    n: usize,
    schedule: &Schedule,
    factory: impl FnMut(ProcessId) -> N,
) -> Result<(), TestCaseError>
where
    N: indirect_abcast::runtime::Node<Command = AbcastCommand, Output = AbcastEvent>,
{
    let mut builder = SimBuilder::new(n, NetworkParams::setup1());
    if let Some((p, at)) = schedule.crash {
        builder = builder.faults(FaultPlan::with_crashes(
            CrashSchedule::new().crash(ProcessId::new(p), Time::ZERO + Duration::from_micros(at)),
        ));
    }
    let mut world = builder.build(factory);
    for &(p, at, size) in &schedule.msgs {
        world.schedule_command(
            ProcessId::new(p),
            Time::ZERO + Duration::from_micros(at),
            AbcastCommand::Broadcast(Payload::zeroed(size)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_secs(20));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    let violations = checker.check_safety();
    prop_assert!(violations.is_empty(), "safety violations: {violations:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn indirect_ct_safety_under_random_crashes(s in schedule_strategy(3, true)) {
        let params = StackParams::with_heartbeat(
            3,
            Duration::from_millis(10),
            Duration::from_millis(60),
        );
        check_safety(3, &s, |p| stacks::indirect_ct(p, &params))?;
    }

    #[test]
    fn indirect_mr_safety_under_random_crashes_n4(s in schedule_strategy(4, true)) {
        let params = StackParams::with_heartbeat(
            4,
            Duration::from_millis(10),
            Duration::from_millis(60),
        );
        check_safety(4, &s, |p| stacks::indirect_mr(p, &params))?;
    }

    #[test]
    fn direct_messages_safety_under_random_crashes(s in schedule_strategy(3, true)) {
        let params = StackParams::with_heartbeat(
            3,
            Duration::from_millis(10),
            Duration::from_millis(60),
        );
        check_safety(3, &s, |p| stacks::direct_ct_messages(p, &params))?;
    }

    #[test]
    fn urb_ids_safety_under_random_crashes(s in schedule_strategy(3, true)) {
        let params = StackParams::with_heartbeat(
            3,
            Duration::from_millis(10),
            Duration::from_millis(60),
        );
        check_safety(3, &s, |p| stacks::urb_ct_ids(p, &params))?;
    }

    /// Even the *faulty* stack keeps total order — its failure mode is
    /// validity, not ordering. Safety-only check must pass.
    #[test]
    fn faulty_ids_keeps_order_even_when_losing_messages(s in schedule_strategy(3, true)) {
        let params = StackParams::with_heartbeat(
            3,
            Duration::from_millis(10),
            Duration::from_millis(60),
        );
        check_safety(3, &s, |p| stacks::faulty_ct_ids(p, &params))?;
    }

    /// Fault-free runs of the flagship stack must deliver everything —
    /// liveness as a property over random workloads.
    #[test]
    fn indirect_ct_fault_free_delivers_everything(s in schedule_strategy(3, false)) {
        let params = StackParams::fault_free(3);
        let mut world = SimBuilder::new(3, NetworkParams::setup1())
            .build(|p| stacks::indirect_ct(p, &params));
        for &(p, at, size) in &s.msgs {
            world.schedule_command(
                ProcessId::new(p),
                Time::ZERO + Duration::from_micros(at),
                AbcastCommand::Broadcast(Payload::zeroed(size)),
            );
        }
        world.run_to_quiescence();
        let mut checker = AbcastChecker::new(3);
        for rec in world.outputs() {
            checker.record(rec.process, &rec.output);
        }
        let violations = checker.check_complete(&[false; 3]);
        prop_assert!(violations.is_empty(), "{violations:?}");
        prop_assert_eq!(checker.sequences()[0].len(), s.msgs.len());
    }

    /// The pipelined consensus window must preserve safety for every
    /// schedule and crash pattern, at every width: decisions are applied
    /// strictly in instance order, so W > 1 may never reorder deliveries.
    #[test]
    fn pipelined_windows_stay_safe_under_random_crashes(s in schedule_strategy(3, true)) {
        for &w in &[1usize, 4, 16] {
            let params = StackParams::with_heartbeat(
                3,
                Duration::from_millis(10),
                Duration::from_millis(60),
            )
            .with_window(w);
            check_safety(3, &s, |p| stacks::indirect_ct(p, &params))?;
        }
    }

    /// Fault-free pipelined runs must deliver every message exactly once —
    /// no duplicate ids (an id can ride two concurrent instances; the
    /// dedupe must catch it) and no lost ids — in one total order, at
    /// every window width.
    #[test]
    fn pipelined_fault_free_delivers_everything(s in schedule_strategy(3, false)) {
        for &w in &[1usize, 4, 16] {
            let params = StackParams::fault_free(3).with_window(w);
            let mut world = SimBuilder::new(3, NetworkParams::setup1())
                .build(|p| stacks::indirect_ct(p, &params));
            for &(p, at, size) in &s.msgs {
                world.schedule_command(
                    ProcessId::new(p),
                    Time::ZERO + Duration::from_micros(at),
                    AbcastCommand::Broadcast(Payload::zeroed(size)),
                );
            }
            world.run_to_quiescence();
            let mut checker = AbcastChecker::new(3);
            for rec in world.outputs() {
                checker.record(rec.process, &rec.output);
            }
            let violations = checker.check_complete(&[false; 3]);
            prop_assert!(violations.is_empty(), "W={w}: {violations:?}");
            prop_assert_eq!(checker.sequences()[0].len(), s.msgs.len());
        }
    }

    /// Determinism as a property: any schedule replayed twice produces the
    /// same outputs.
    #[test]
    fn replays_are_identical(s in schedule_strategy(3, true)) {
        let run = || {
            let params = StackParams::with_heartbeat(
                3,
                Duration::from_millis(10),
                Duration::from_millis(60),
            );
            let mut builder = SimBuilder::new(3, NetworkParams::setup2());
            if let Some((p, at)) = s.crash {
                builder = builder.faults(FaultPlan::with_crashes(
                    CrashSchedule::new()
                        .crash(ProcessId::new(p), Time::ZERO + Duration::from_micros(at)),
                ));
            }
            let mut world = builder.build(|p| stacks::indirect_ct(p, &params));
            for &(p, at, size) in &s.msgs {
                world.schedule_command(
                    ProcessId::new(p),
                    Time::ZERO + Duration::from_micros(at),
                    AbcastCommand::Broadcast(Payload::zeroed(size)),
                );
            }
            world.run_until(Time::ZERO + Duration::from_secs(2));
            world
                .outputs()
                .iter()
                .map(|r| (r.at, r.process, format!("{:?}", r.output)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
