//! Smoke tests of the thread and TCP runtimes: the same protocol stacks,
//! real concurrency, wall-clock time.

use indirect_abcast::prelude::*;

fn delivery_orders(outputs: &[indirect_abcast::net::NetOutput<AbcastEvent>], n: usize) -> Vec<Vec<MsgId>> {
    let mut orders = vec![Vec::new(); n];
    for rec in outputs {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    orders
}

#[test]
fn thread_cluster_totally_orders() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_ct(p, &params));
    for i in 0..8u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(800));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 8, "all messages delivered: {orders:?}");
    assert!(orders.iter().all(|o| o == &orders[0]), "orders diverged: {orders:?}");
}

#[test]
fn thread_cluster_with_heartbeat_fd_stays_quiet() {
    // A heartbeat FD on a healthy cluster must not disturb the protocol
    // (no false suspicions at these generous timeouts).
    let n = 3;
    let params = StackParams::with_heartbeat(
        n,
        Duration::from_millis(20),
        Duration::from_millis(500),
    );
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_ct(p, &params));
    for i in 0..5u16 {
        cluster.send_command(ProcessId::new(i % 3), AbcastCommand::Broadcast(Payload::zeroed(8)));
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(700));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 5);
    assert!(orders.iter().all(|o| o == &orders[0]));
}

#[test]
fn thread_cluster_mr_variant() {
    let n = 4;
    let params = StackParams::fault_free(n);
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_mr(p, &params));
    for i in 0..6u16 {
        cluster.send_command(ProcessId::new(i % 4), AbcastCommand::Broadcast(Payload::zeroed(8)));
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(800));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 6);
    assert!(orders.iter().all(|o| o == &orders[0]));
}

#[test]
fn tcp_cluster_totally_orders() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = TcpCluster::start(n, |p| stacks::indirect_ct(p, &params));
    for i in 0..6u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::from(vec![i as u8; 32])),
        );
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(1200));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 6, "all messages delivered over TCP: {orders:?}");
    assert!(orders.iter().all(|o| o == &orders[0]));
}

#[test]
fn tcp_cluster_carries_large_payloads() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = TcpCluster::start(n, |p| stacks::indirect_ct(p, &params));
    cluster.send_command(
        ProcessId::new(0),
        AbcastCommand::Broadcast(Payload::zeroed(200_000)),
    );
    let outputs = cluster.run_for(std::time::Duration::from_millis(1200));
    cluster.shutdown();
    let delivered: Vec<_> = outputs
        .iter()
        .filter_map(|o| match &o.output {
            AbcastEvent::Delivered { msg } => Some(msg.payload().len()),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![200_000; 3], "payload must survive framing intact");
}
