//! Smoke tests of the thread and TCP runtimes: the same protocol stacks,
//! real concurrency, wall-clock time.

use indirect_abcast::prelude::*;

fn delivery_orders(outputs: &[indirect_abcast::net::NetOutput<AbcastEvent>], n: usize) -> Vec<Vec<MsgId>> {
    let mut orders = vec![Vec::new(); n];
    for rec in outputs {
        if let AbcastEvent::Delivered { msg } = &rec.output {
            orders[rec.process.as_usize()].push(msg.id());
        }
    }
    orders
}

#[test]
fn thread_cluster_totally_orders() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_ct(p, &params));
    for i in 0..8u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(800));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 8, "all messages delivered: {orders:?}");
    assert!(orders.iter().all(|o| o == &orders[0]), "orders diverged: {orders:?}");
}

#[test]
fn thread_cluster_with_heartbeat_fd_stays_quiet() {
    // A heartbeat FD on a healthy cluster must not disturb the protocol
    // (no false suspicions at these generous timeouts).
    let n = 3;
    let params = StackParams::with_heartbeat(
        n,
        Duration::from_millis(20),
        Duration::from_millis(500),
    );
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_ct(p, &params));
    for i in 0..5u16 {
        cluster.send_command(ProcessId::new(i % 3), AbcastCommand::Broadcast(Payload::zeroed(8)));
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(700));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 5);
    assert!(orders.iter().all(|o| o == &orders[0]));
}

#[test]
fn thread_cluster_mr_variant() {
    let n = 4;
    let params = StackParams::fault_free(n);
    let mut cluster = ThreadCluster::start(n, |p| stacks::indirect_mr(p, &params));
    for i in 0..6u16 {
        cluster.send_command(ProcessId::new(i % 4), AbcastCommand::Broadcast(Payload::zeroed(8)));
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(800));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 6);
    assert!(orders.iter().all(|o| o == &orders[0]));
}

#[test]
fn tcp_cluster_totally_orders() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = TcpCluster::start(n, |p| stacks::indirect_ct(p, &params));
    for i in 0..6u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::from(vec![i as u8; 32])),
        );
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(1200));
    cluster.shutdown();
    let orders = delivery_orders(&outputs, n);
    assert_eq!(orders[0].len(), 6, "all messages delivered over TCP: {orders:?}");
    assert!(orders.iter().all(|o| o == &orders[0]));
}

#[test]
fn tcp_cluster_kill_and_respawn_catches_up_from_the_durable_log() {
    use indirect_abcast::core::{DecidedLog, DurableDecidedLog};

    let n = 3;
    let dir = std::env::temp_dir().join(format!("iabc-respawn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = |p: usize| dir.join(format!("decided-{p}.log"));

    let params = StackParams::fault_free(n).with_catch_up(true);
    let start_cluster = || {
        TcpCluster::start(n, |p| {
            let mut node = stacks::indirect_ct(p, &params);
            node.set_decided_log(Box::new(
                DurableDecidedLog::open(log_path(p.as_usize())).unwrap(),
            ));
            node
        })
    };

    // Phase 1: a healthy run; every process logs what it a-delivers.
    let mut cluster = start_cluster();
    for i in 0..6u16 {
        cluster.send_command(
            ProcessId::new(i % 3),
            AbcastCommand::Broadcast(Payload::from(vec![i as u8; 24])),
        );
    }
    let outputs = cluster.run_for(std::time::Duration::from_millis(1500));
    cluster.shutdown();
    let delivered = outputs
        .iter()
        .filter(|o| matches!(o.output, AbcastEvent::Delivered { .. }))
        .count();
    assert_eq!(delivered, 6 * n, "phase 1 must deliver everything: {outputs:?}");

    // "Kill" process 2: chop its log mid-record, exactly as a crash in the
    // middle of an append would. Reopening recovers the longest valid
    // prefix, leaving the victim behind its peers.
    let victim = log_path(2);
    let len = std::fs::metadata(&victim).unwrap().len();
    assert!(len > 2, "the victim must have logged something in phase 1");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&victim)
        .unwrap()
        .set_len(len / 2)
        .unwrap();
    let truncated: DurableDecidedLog<IdSet> = DurableDecidedLog::open(&victim).unwrap();
    let behind = truncated.frontier();
    drop(truncated);

    // Respawn on the same log paths, with no new application traffic: the
    // victim resumes from its recovered prefix, learns the peers' frontiers
    // from the start-up probe, and range-fetches the missing suffix over
    // real sockets.
    let mut cluster = start_cluster();
    let _ = cluster.run_for(std::time::Duration::from_millis(800));
    cluster.shutdown();

    let survivor: DurableDecidedLog<IdSet> = DurableDecidedLog::open(log_path(0)).unwrap();
    let caught_up: DurableDecidedLog<IdSet> = DurableDecidedLog::open(&victim).unwrap();
    assert!(survivor.frontier() >= 1, "survivor logged nothing");
    assert!(
        caught_up.frontier() >= survivor.frontier(),
        "victim (restarted at frontier {behind}) must catch back up: {} < {}",
        caught_up.frontier(),
        survivor.frontier()
    );
    for k in 1..=survivor.frontier() {
        assert_eq!(survivor.get(k), caught_up.get(k), "logs must agree on instance {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_cluster_carries_large_payloads() {
    let n = 3;
    let params = StackParams::fault_free(n);
    let mut cluster = TcpCluster::start(n, |p| stacks::indirect_ct(p, &params));
    cluster.send_command(
        ProcessId::new(0),
        AbcastCommand::Broadcast(Payload::zeroed(200_000)),
    );
    let outputs = cluster.run_for(std::time::Duration::from_millis(1200));
    cluster.shutdown();
    let delivered: Vec<_> = outputs
        .iter()
        .filter_map(|o| match &o.output {
            AbcastEvent::Delivered { msg } => Some(msg.payload().len()),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![200_000; 3], "payload must survive framing intact");
}
