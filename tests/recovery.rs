//! Crash-recovery and read-replica integration tests: a restarted process
//! resumes from its durable decided log and range-fetches the instances it
//! missed; a learner converges to the same delivered sequence without ever
//! proposing.

use indirect_abcast::core::{DecidedLog, DurableDecidedLog};
use indirect_abcast::prelude::*;

fn hb(n: usize) -> StackParams {
    StackParams::with_heartbeat(n, Duration::from_millis(10), Duration::from_millis(60))
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("iabc-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn restarted_process_rejoins_from_its_durable_log() {
    // p2 crashes mid-run and restarts later from its durable log: the
    // replacement node reloads the logged prefix (no re-delivery), learns
    // the survivors' frontiers, range-fetches everything decided while it
    // was down, and then follows live traffic again. Its concatenated
    // a-delivery sequence (first incarnation + restarted one) must be
    // byte-identical to the survivors'.
    let n = 3;
    let victim = ProcessId::new(2);
    let dir = tmp_dir("rejoin");
    let params = hb(n).with_catch_up(true);

    let schedule = CrashSchedule::new().crash_restart(
        victim,
        Time::ZERO + Duration::from_millis(40),
        Time::ZERO + Duration::from_millis(300),
    );
    let dir_for_factory = dir.clone();
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(schedule))
        .build(move |p| {
            let mut node = stacks::indirect_ct(p, &params);
            let path = dir_for_factory.join(format!("decided-{}.log", p.as_usize()));
            node.set_decided_log(Box::new(DurableDecidedLog::open(path).unwrap()));
            node
        });

    // One broadcast from the victim well before its crash (so its seq
    // counter must survive the restart), then survivor traffic that keeps
    // flowing through the downtime — and goes quiet well before the
    // restart, so every downtime broadcast is decided and logged by the
    // survivors by the time the victim asks for the missing range.
    world.schedule_command(
        victim,
        Time::ZERO + Duration::from_millis(5),
        AbcastCommand::Broadcast(Payload::zeroed(16)),
    );
    for i in 0..12u64 {
        world.schedule_command(
            ProcessId::new((i % 2) as u16),
            Time::ZERO + Duration::from_millis(12 * i + 3),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    // Live traffic after the rejoin, including a fresh broadcast from the
    // restarted victim: its recovered seq counter must not reuse an id.
    for i in 0..4u64 {
        world.schedule_command(
            ProcessId::new((i % 2) as u16),
            Time::ZERO + Duration::from_millis(400 + 15 * i),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.schedule_command(
        victim,
        Time::ZERO + Duration::from_millis(430),
        AbcastCommand::Broadcast(Payload::zeroed(16)),
    );
    world.run_until(Time::ZERO + Duration::from_secs(10));

    // The restart actually exercised the catch-up path.
    assert!(
        world.node(victim).catch_up_requests() > 0,
        "the restarted victim never issued a catch-up request"
    );
    assert!(
        world.node(victim).caught_up_entries() > 0,
        "the restarted victim learned nothing through catch-up"
    );

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    // All 18 broadcasts were accepted by processes that were up at the
    // time, and the victim recovered: nobody is excused.
    let violations = checker.check_complete(&[false, false, false]);
    assert!(violations.is_empty(), "violations: {violations:?}");
    let seqs = checker.sequences();
    assert_eq!(seqs[0], seqs[1], "survivors disagree");
    assert_eq!(
        seqs[2], seqs[0],
        "the victim's concatenated sequence must be byte-identical to the survivors'"
    );
    assert_eq!(seqs[0].len() as u64, 18, "some broadcast was never delivered");

    // And the victim's durable log converged to the survivors' content.
    drop(world);
    let read = |p: u16| {
        DurableDecidedLog::<IdSet>::open(dir.join(format!("decided-{p}.log"))).unwrap()
    };
    let survivor = read(0);
    let rejoined = read(2);
    assert!(survivor.frontier() >= 1);
    assert!(
        rejoined.frontier() >= survivor.frontier(),
        "rejoined log stopped at {} < {}",
        rejoined.frontier(),
        survivor.frontier()
    );
    for k in 1..=survivor.frontier() {
        assert_eq!(survivor.get(k), rejoined.get(k), "logs disagree on instance {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn learner_converges_without_ever_proposing() {
    // p3 is a learner (read replica), declared to the whole membership via
    // the learner set: it never broadcasts, proposes, or acks; the
    // heartbeat FD never suspects it; coordinator rotation and quorums run
    // over the three actives only — yet p3 a-delivers the exact same
    // sequence, learned purely from frontier piggybacks and catch-up
    // batches.
    let n = 4;
    let learner = ProcessId::new(3);
    let mut learners = ProcessSet::new();
    learners.insert(learner);
    let params = hb(n).with_catch_up(true).with_learner_set(learners);
    let mut world =
        SimBuilder::new(n, NetworkParams::setup1()).build(|p| stacks::indirect_ct(p, &params));
    for i in 0..15u64 {
        world.schedule_command(
            ProcessId::new((i % 3) as u16),
            Time::ZERO + Duration::from_millis(11 * i + 2),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let node = world.node(learner);
    assert!(node.is_learner());
    assert!(node.caught_up_entries() > 0, "the learner learned nothing through catch-up");
    // No instance was ever proposed locally: nothing in flight, and the
    // decision-latency metric (which only counts locally proposed
    // instances) never ticked.
    assert_eq!(node.in_flight(), 0, "a learner must never propose");
    assert_eq!(node.decision_latency_stats().1, 0, "a learner must never propose");

    let mut checker = AbcastChecker::new(n);
    let mut learner_broadcasts = 0;
    for rec in world.outputs() {
        if rec.process == learner && matches!(rec.output, AbcastEvent::Broadcast { .. }) {
            learner_broadcasts += 1;
        }
        checker.record(rec.process, &rec.output);
    }
    assert_eq!(learner_broadcasts, 0, "a learner must never a-broadcast");
    assert!(checker.check_safety().is_empty());
    let seqs = checker.sequences();
    assert_eq!(seqs[0].len() as u64, 15, "actives did not deliver everything");
    assert_eq!(seqs[0], seqs[1]);
    assert_eq!(seqs[1], seqs[2]);
    assert_eq!(
        seqs[3], seqs[0],
        "the learner's sequence must match the actives' byte for byte"
    );
}

#[test]
fn learner_set_survives_an_active_crash() {
    // The payoff of native learner membership: with p3 declared a learner,
    // quorums are majorities of the 3 actives (= 2), so the cluster
    // tolerates one *active* crash. Under the old suspicion-based scheme
    // the learner still counted toward a 3-of-4 quorum that the two
    // surviving actives could never reach.
    let n = 4;
    let learner = ProcessId::new(3);
    let mut learners = ProcessSet::new();
    learners.insert(learner);
    let params = hb(n).with_catch_up(true).with_learner_set(learners);

    let schedule = CrashSchedule::new().crash(ProcessId::new(2), Time::ZERO + Duration::from_millis(40));
    let mut world = SimBuilder::new(n, NetworkParams::setup1())
        .faults(FaultPlan::with_crashes(schedule))
        .build(|p| stacks::indirect_ct(p, &params));
    for i in 0..12u64 {
        world.schedule_command(
            ProcessId::new((i % 2) as u16), // only the two survivors broadcast
            Time::ZERO + Duration::from_millis(13 * i + 2),
            AbcastCommand::Broadcast(Payload::zeroed(16)),
        );
    }
    world.run_until(Time::ZERO + Duration::from_secs(10));

    let mut checker = AbcastChecker::new(n);
    for rec in world.outputs() {
        checker.record(rec.process, &rec.output);
    }
    assert!(checker.check_safety().is_empty());
    let seqs = checker.sequences();
    assert_eq!(
        seqs[0].len() as u64,
        12,
        "two surviving actives + a learner must keep deciding without the crashed third"
    );
    assert_eq!(seqs[0], seqs[1]);
    assert_eq!(
        seqs[3], seqs[0],
        "the learner must follow the post-crash decisions byte for byte"
    );
}
