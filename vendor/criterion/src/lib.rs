//! Offline shim for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use —
//! [`Criterion`], [`Bencher::iter`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — as a small wall-clock timing harness: each
//! `bench_function` runs a short warm-up, then `sample_size` timed samples,
//! and prints mean/min per-iteration times. No statistics engine, plots or
//! baselines; swap the vendored `path` dependency for the registry crate to
//! get the real Criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configured by `Criterion::default()` builder calls.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: find an iteration count that fills a per-sample slice of
        // the measurement budget, starting from one timed iteration.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_nanos(1);
        while Instant::now() < warm_up_end {
            f(&mut bencher);
            if bencher.iters > 0 && !bencher.elapsed.is_zero() {
                per_iter = bencher.elapsed / bencher.iters as u32;
            }
            bencher.iters = 1;
        }

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = (per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u32::MAX as u128) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{id:<48} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }
}
