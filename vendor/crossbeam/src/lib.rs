//! Offline shim for `crossbeam`, exposing `crossbeam::channel` backed by
//! `std::sync::mpsc`. Only the unbounded-channel subset this workspace
//! uses is provided; the mpsc types have compatible method signatures
//! (`send`, `recv`, `recv_timeout`, `try_recv`, cloneable senders).

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded MPSC channel, crossbeam-style.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
