//! Offline shim for `proptest`.
//!
//! A small but *functional* property-testing harness with the proptest 1.x
//! API surface this workspace uses: the [`Strategy`] trait with `prop_map`
//! and `boxed`, range / tuple / `Just` / `any::<T>()` strategies,
//! `collection::vec`, `option::of`, the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! counterexample), and generation is deterministic per test function —
//! every run replays the same case sequence, which suits a reproducibility-
//! focused workspace. Swap the vendored `path` dependency for the registry
//! crate to get the real engine; the call sites need no changes.

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    // Full 64-bit output: `any::<u64>()` must be able to produce MAX
    // (and `any::<i64>()` -1), which a `0..MAX` range sample cannot.
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        self.0.gen_range(range)
    }
}

/// Failure of a single test case (what `prop_assert!` produces).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// proptest-compatible alias used by `TestCaseError::Fail(..)`-style code.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration: `#![proptest_config(ProptestConfig { cases: 48, .. })]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Unused by the shim; kept so `..ProptestConfig::default()` works
    /// against code written for the real crate.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`]. Rejection is handled by
/// bounded resampling.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` — `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies: `proptest::collection::vec(elem, len_range)`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for collection strategies, as in real proptest:
    /// built from `usize`, `a..b` or `a..=b`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.min..self.len.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies: `proptest::option::of(inner)`.
pub mod option {
    use super::{Strategy, TestRng};

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The execution engine behind the [`proptest!`] macro.
pub mod test_runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};
    use std::fmt;

    /// Runs `config.cases` generated cases of `body` against `strategy`,
    /// panicking with the counterexample on the first failure. Seeds are a
    /// deterministic function of the test name so runs are reproducible.
    pub fn run_cases<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, mut body: F)
    where
        S: Strategy,
        S::Value: fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name.as_bytes());
        for case in 0..config.cases {
            let mut rng = TestRng::from_seed(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let value = strategy.generate(&mut rng);
            let debug = format!("{value:?}");
            if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)))
                .unwrap_or_else(|panic| {
                    Err(TestCaseError::fail(panic_message(&panic)))
                })
            {
                panic!(
                    "proptest case {case}/{cases} of `{test_name}` failed: {e}\n\
                     counterexample: {debug}",
                    cases = config.cases,
                );
            }
        }
    }

    fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic".to_string()
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |($($pat,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u16..10, 5u64..50)) {
            prop_assert!(a < 10);
            prop_assert!((5..50).contains(&b));
        }

        #[test]
        fn vecs(v in crate::collection::vec(any::<u8>(), 0..17)) {
            prop_assert!(v.len() < 17);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        #[test]
        fn config_applies(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "counterexample")]
    fn failures_report_counterexample() {
        crate::test_runner::run_cases(
            "failing",
            &ProptestConfig::with_cases(4),
            &(0u8..4),
            |x| {
                prop_assert!(x < 1, "x too big: {x}");
                Ok(())
            },
        );
    }
}
