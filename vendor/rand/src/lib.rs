//! Offline shim for `rand`.
//!
//! Implements the subset of the rand 0.8 API this workspace uses —
//! `SmallRng::seed_from_u64` and `Rng::gen_range` over integer and float
//! ranges — on top of xoshiro256** seeded through splitmix64. The stream is
//! fixed and platform-independent, which is exactly what the deterministic
//! workload generators want.

use std::ops::Range;

/// Seeding constructor subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling subset of `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng.next_u64()) * span;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the range widths used here.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Small fast RNGs, rand-style.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — the same construction the real
    /// `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let y = rng.gen_range(3u16..17);
            assert!((3..17).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
