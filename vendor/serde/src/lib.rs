//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (traits + derive macros) so
//! annotated types compile without a crate registry. Nothing in this
//! workspace serializes through serde at run time; replace this shim with
//! the real crate (same package name) when a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeMarker<'de> {}
