//! Offline shim for `serde_derive`.
//!
//! The derives accept the same invocation surface as the real macros
//! (including `#[serde(...)]` helper attributes) but generate no code: this
//! workspace only uses the derives as forward-looking annotations and never
//! serializes through serde at run time.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
